// hytgraph::Engine — the one public entry point of the library.
//
// The Engine owns a graph and serves typed Query objects against it:
//
//   Engine engine(std::move(graph));                 // HyTGraph defaults
//   auto sssp = engine.Run({.algorithm = AlgorithmId::kSssp, .source = 0});
//   auto ranks = engine.Run({.algorithm = AlgorithmId::kPageRank});
//
// Four things distinguish it from calling the solver directly:
//
//  * Cached preparation. The hub-sorted vertex order HyTGraph's
//    contribution-driven scheduling needs (Section VI-A) is expensive to
//    build; the Engine memoizes PreparedGraph instances keyed by an options
//    fingerprint, so repeated queries — and every query of a batch — reuse
//    one preparation. QueryResult reports per-query hit/miss plus the
//    engine-wide counters.
//
//  * Registry dispatch. Queries name an AlgorithmId; the Engine resolves it
//    through the algorithm registry (algorithms/registry.h), which covers
//    all six built-in algorithms with typed per-algorithm parameters.
//
//  * Batched execution. RunBatch fans a vector of queries (same or mixed
//    algorithms, multiple sources) out over the process thread pool;
//    per-query results are deterministic and identical to sequential Run
//    calls (bitwise for the value-selection family, whose fixpoints are
//    schedule-independent).
//
//  * Dynamic mutation with epoch-versioned snapshots. ApplyMutations
//    applies a MutationBatch (src/dynamic/) to a copy-on-write DeltaOverlay
//    over the immutable base CSR and bumps the engine epoch. Prepared-graph
//    cache entries are tagged with the epoch they were built against and
//    invalidated lazily on next lookup; queries pin the GraphView of the
//    epoch they planned against via shared ownership, so in-flight batches
//    keep running to completion on their snapshot while mutations land.
//    Run/RunBatch/RunIncremental execute *directly on the live view*
//    (base + delta merged on the fly): a query issued right after
//    ApplyMutations triggers zero SnapshotCompactor folds. Folding is
//    purely policy-driven — eager when the delta crosses the
//    CompactionPolicy threshold (CompactionMode::kThreshold), only via
//    explicit Compact() (CompactionMode::kManual), or handed to a
//    BackgroundCompactor worker thread (CompactionMode::kBackground) so
//    neither mutators nor queries ever block on the O(E) rebuild — batches
//    racing a background fold are re-applied onto the freshly folded base
//    at publication. Mutation publication itself is O(|batch|): the
//    overlay patches per-vertex degree deltas incrementally, the view's
//    logical offsets are a lazily built sparse index (no O(V) prefix
//    rebuild under the write lock), and the default source tracks the
//    degree argmax incrementally — batches racing a pinned reader land in
//    an O(1) layered tail overlay (DeltaOverlay::NewTail) instead of an
//    O(delta) copy, so publication latency is independent of how much
//    delta the readers have pinned. Deep layer chains are collapsed off
//    the write path (background worker) or inline past a small depth cap.
//    EnqueueMutations is the wait-free admission path on top: batches go
//    into a lock-free MPSC queue and a dedicated ingest worker drains them
//    through ApplyMutations in FIFO order, so producers never contend on
//    graph_mu_ at all. RunIncremental advances a previous result to the
//    current epoch: insert-only deltas warm-start BFS/SSSP/CC/SSWP from
//    the previous values; deltas with deletions invalidate only the
//    affected cone (KickStarter-style) and re-seed from its boundary;
//    PR/PHP re-inject the mutated edges' residual contributions
//    Maiter-style. A full recompute remains the fallback — when the
//    policy disables a path or the snapshot GC retired the needed
//    mutation-log entries — and RunTrace::incremental_fallback reports
//    which reason triggered it.
//
// Direction-optimizing queries (SolverOptions::direction = pull/auto) pull
// over the view's reverse side. The reverse transpose is built lazily on
// the first pull iteration and then reused engine-wide: copies of the view
// (including prepared-cache entries) share it, and each mutation
// publication seeds the next epoch's view with the already-built transpose
// — so it is built at most once per physical layout and dropped exactly
// when a fold publishes a new base (Compact() / threshold / background
// folds), alongside the prepared cache.
//
// Thread safety: Run/RunBatch/RunIncremental/ApplyMutations may be called
// concurrently from multiple threads; the prepared cache and the mutation
// state are internally synchronized. References returned by graph() are
// valid until the next compaction — hold Snapshot() (or View()) to pin a
// graph version across mutations.

#ifndef HYTGRAPH_CORE_ENGINE_H_
#define HYTGRAPH_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <variant>
#include <vector>

#include "algorithms/registry.h"
#include "algorithms/runner.h"
#include "core/options.h"
#include "core/trace.h"
#include "dynamic/background_compactor.h"
#include "dynamic/delta_overlay.h"
#include "dynamic/mutation.h"
#include "dynamic/mutation_queue.h"
#include "dynamic/snapshot_compactor.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "storage/block_cache.h"
#include "storage/edge_block_store.h"
#include "storage/prefetcher.h"
#include "storage/storage_options.h"
#include "util/health.h"
#include "util/status.h"

namespace hytgraph {

/// One unit of work: which algorithm, from where, with which parameters.
struct Query {
  AlgorithmId algorithm = AlgorithmId::kSssp;
  /// Source vertex for the source-seeded algorithms (BFS, SSSP, PHP, SSWP).
  /// kInvalidVertex selects the engine default (highest out-degree vertex);
  /// ignored by PR and CC.
  VertexId source = kInvalidVertex;
  AlgoParams params;
};

/// Engine-wide preparation-cache counters.
struct EngineCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
  /// Entries dropped lazily because their epoch no longer matched.
  uint64_t invalidated = 0;
};

/// The result of one query: values in original vertex ids, the execution
/// trace, and what the preparation cache did for this query.
struct QueryResult {
  AlgorithmId algorithm = AlgorithmId::kSssp;
  /// The resolved source (kInvalidVertex for algorithms without one).
  VertexId source = kInvalidVertex;
  QueryValues values;
  RunTrace trace;
  /// True when this query reused a cached PreparedGraph (no hub re-sort).
  bool prepared_cache_hit = false;
  /// Engine-wide cache counters snapshotted after this query resolved.
  EngineCacheStats cache_stats;
  /// The graph epoch this result reflects (0 before any mutation).
  uint64_t epoch = 0;
  /// True when the result came from an incremental warm-start rather than
  /// a full solver run.
  bool incremental = false;
  /// Dependency forest for the monotone family: parents[v] is the
  /// in-neighbor whose relaxation produced v's value (kInvalidVertex for
  /// axioms). Attached by RunIncremental after a deletion-aware warm
  /// start and carried forward through the chain, so each subsequent
  /// deletion invalidates only the severed subtrees instead of paying a
  /// full certification pass. Null on full runs and insert-only chains
  /// that never met a deletion.
  std::shared_ptr<const std::vector<VertexId>> dependency_parents;

  bool is_f64() const {
    return std::holds_alternative<std::vector<double>>(values);
  }
  const std::vector<uint32_t>& u32() const {
    return std::get<std::vector<uint32_t>>(values);
  }
  const std::vector<double>& f64() const {
    return std::get<std::vector<double>>(values);
  }
};

/// What one ApplyMutations call did.
struct MutationResult {
  /// Epoch after the batch (each non-empty batch bumps it by one).
  uint64_t epoch = 0;
  uint64_t inserted = 0;
  uint64_t deleted = 0;
  /// True when the batch pushed the delta over the CompactionPolicy
  /// threshold and the overlay was folded into a fresh base snapshot
  /// inline (CompactionMode::kThreshold only).
  bool compacted = false;
  /// True when the batch crossed the threshold under
  /// CompactionMode::kBackground and a fold was enqueued on the worker
  /// (the publication itself returned without folding).
  bool fold_scheduled = false;
  /// Pending delta edges after the batch (0 right after an inline fold;
  /// under kBackground the enqueued fold drains it asynchronously).
  uint64_t pending_delta_edges = 0;
};

class Engine {
 public:
  /// Takes ownership of `graph`. `default_options` configure queries that
  /// do not pass explicit options (and the simulated platform for those
  /// that do not care); `compaction` governs when pending mutation deltas
  /// are folded into a fresh base snapshot; `storage` bounds host memory —
  /// when storage.enabled(), the base CSR's edge arrays are spilled to an
  /// edge-block store and stream through a block cache of
  /// storage.memory_budget_bytes (mutation overlays always stay in
  /// memory). Values are identical to the in-memory engine; only time and
  /// memory move.
  explicit Engine(CsrGraph graph,
                  SolverOptions default_options =
                      SolverOptions::Defaults(SystemKind::kHyTGraph),
                  CompactionPolicy compaction = {},
                  StorageOptions storage = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Stops and joins the background compaction worker (if the policy runs
  /// one) before any engine state is torn down. In-flight background folds
  /// complete; queued ones are abandoned.
  ~Engine();

  /// The current *base* snapshot — the last folded CSR. Pending mutations
  /// are NOT folded in (queries run on the view; see View()); after
  /// ApplyMutations this still serves the pre-delta graph until a
  /// policy-driven or explicit compaction lands. The reference is valid
  /// until the next compaction; use Snapshot() to pin a version.
  const CsrGraph& graph() const;

  /// Shared ownership of the current base snapshot. Holders keep reading
  /// a consistent graph while later compactions produce new snapshots.
  std::shared_ptr<const CsrGraph> Snapshot() const;

  /// The live logical graph: current base + pending delta. This is what
  /// queries execute on; the returned view pins both components, so it
  /// stays consistent while later mutations publish new snapshots.
  GraphView View() const;

  const SolverOptions& default_options() const { return default_options_; }

  /// The source used when a query does not name one: the highest
  /// out-degree vertex of the current snapshot (kInvalidVertex on an empty
  /// graph).
  VertexId DefaultSource() const;

  /// Monotone graph-version counter; each non-empty ApplyMutations batch
  /// bumps it by one.
  uint64_t epoch() const;

  /// Pending (not yet folded) delta edges in the overlay.
  uint64_t pending_delta_edges() const;

  /// Applies an ordered batch of edge mutations, bumping the epoch.
  /// In-flight queries keep their pinned snapshots; prepared-cache entries
  /// from older epochs are invalidated lazily on their next lookup.
  Result<MutationResult> ApplyMutations(const MutationBatch& batch);

  /// Wait-free mutation admission: validates `batch` against the vertex
  /// count (immutable for the engine's lifetime), pushes it onto a
  /// lock-free MPSC queue, and returns — no graph_mu_, no allocation
  /// proportional to the pending delta, no fold. A dedicated ingest
  /// worker drains the queue in FIFO order through ApplyMutations;
  /// producers therefore never contend with queries, folds, or each
  /// other. Epoch assignment happens at drain time, in queue order.
  /// Failures past admission (internal invariant breakage) are counted
  /// and logged by the worker, not reported to the producer.
  Status EnqueueMutations(MutationBatch batch);

  /// Ingest barrier: blocks until every batch enqueued before the call has
  /// been drained and applied (epochs assigned, views published). Queries
  /// issued after it observe all prior EnqueueMutations calls.
  void WaitForIngest();

  /// Batches admitted through EnqueueMutations and applied by the ingest
  /// worker so far.
  uint64_t ingested_batches() const;

  /// Current depth of the published overlay's layer chain (1 = flat). A
  /// depth above 1 means batches landed in O(1) tail layers while readers
  /// pinned older layers; chains are collapsed when readers drain or the
  /// depth cap trips.
  int overlay_depth() const;

  /// Explicitly folds the pending delta into a fresh base snapshot (no-op
  /// when none is pending). The logical graph and the epoch are unchanged —
  /// only the physical layout moves. Cached preparations are dropped so
  /// subsequent queries rebuild against the compacted layout (in-flight
  /// queries keep the snapshots they pinned). This is the only fold
  /// trigger under CompactionMode::kManual. Under kBackground the fold
  /// runs on the worker; this call enqueues it and waits for the queue to
  /// drain, so the pending delta observed at call time is folded on
  /// return (modulo batches racing the publication).
  Status Compact();

  /// Publication barrier for asynchronous folds: blocks until the
  /// background fold queue is drained and no fold cycle is in flight.
  /// Immediate no-op under kThreshold/kManual (folds are synchronous
  /// there).
  void WaitForCompaction();

  /// Runs one query under the engine default options.
  Result<QueryResult> Run(const Query& query);
  /// Runs one query under explicit options (ablations, baseline systems).
  Result<QueryResult> Run(const Query& query, const SolverOptions& options);

  /// Advances `previous` (a result for the same query from an earlier
  /// epoch) to the current epoch without a full traversal:
  ///  * BFS/SSSP/CC/SSWP, insert-only delta — warm-start from the previous
  ///    values, re-activating only the inserted edges' sources;
  ///  * BFS/SSSP/CC/SSWP, delta with deletions — invalidate only the cone
  ///    of vertices whose values may have derived through a deleted edge
  ///    and re-seed from its boundary (dynamic/incremental.h);
  ///  * PR/PHP — re-inject the mutated edges' residual contributions and
  ///    propagate the delta chaotically (Maiter-style).
  /// A full recompute remains the transparent fallback when the policy
  /// disables a path (CompactionPolicy::incremental_deletion_cone /
  /// incremental_accumulative) or the snapshot GC retired the mutation-log
  /// entries since previous.epoch; RunTrace::incremental_fallback carries
  /// the reason and QueryResult::incremental reports which path ran.
  /// Values match a full recompute either way (bitwise for the monotone
  /// family, up to the kernels' epsilon residual for PR/PHP).
  Result<QueryResult> RunIncremental(const Query& query,
                                     const QueryResult& previous);

  /// Executes `queries` concurrently on the process thread pool, sharing
  /// cached preparations. Results are index-aligned with `queries` and
  /// identical to sequential Run calls; the first failing query's status is
  /// returned on error.
  Result<std::vector<QueryResult>> RunBatch(const std::vector<Query>& queries);
  Result<std::vector<QueryResult>> RunBatch(const std::vector<Query>& queries,
                                            const SolverOptions& options);

  /// RunBatch pinned to a single graph epoch: one ViewRef is captured up
  /// front and every query plans against it, so all results carry the same
  /// QueryResult::epoch even when mutations land mid-batch (plain RunBatch
  /// captures a view per query and a batch can straddle an epoch bump).
  /// This is the substrate of the serving layer's query fusion: a fused
  /// group shares one PreparedGraph — one hub sort — and its per-request
  /// results are attributable to one consistent snapshot.
  Result<std::vector<QueryResult>> RunBatchPinned(
      const std::vector<Query>& queries);
  Result<std::vector<QueryResult>> RunBatchPinned(
      const std::vector<Query>& queries, const SolverOptions& options);

  EngineCacheStats cache_stats() const;

  /// Point-in-time health of the supervised subsystems ("ingest",
  /// "compactor", "storage"). A degraded subsystem keeps the engine
  /// serving: a parked fold leaves queries on the unfolded overlay chain,
  /// a parked ingest batch retries with backoff, and storage failures
  /// surface as kUnavailable query errors. Healing (first success after a
  /// failure streak) flips the subsystem back to healthy.
  EngineHealth Health() const;

  /// Fold statistics of the snapshot compactor (write- plus read-triggered).
  SnapshotCompactor::Stats compactor_stats() const;

  /// True when the base CSR streams from the edge-block store (storage was
  /// enabled and the initial spill succeeded).
  bool out_of_core() const;
  const StorageOptions& storage_options() const { return storage_options_; }
  /// Block-cache counters (hits, misses, evictions, bytes read, prefetch
  /// accuracy). All-zero when storage is disabled.
  StorageStats storage_stats() const;

  /// Drops all memoized preparations. Counters (hits/misses/invalidated)
  /// are preserved; only `entries` resets.
  void ClearPreparedCache();

 private:
  /// The current epoch's live view plus the metadata a query plan needs,
  /// captured atomically.
  struct ViewRef {
    GraphView view;
    uint64_t epoch = 0;
    /// Physical-layout version: bumped on every fold. Distinguishes
    /// same-epoch snapshots whose layout changed (Compact() does not bump
    /// the epoch), so the prepared cache never resurrects a pre-fold view.
    uint64_t layout = 0;
    VertexId default_source = kInvalidVertex;
  };

  /// A query resolved against the cache and ready to execute.
  struct PlannedQuery {
    Query query;
    SolverOptions options;  // effective (per-algorithm fixups applied)
    std::shared_ptr<const PreparedGraph> prepared;
    /// Pins the base/overlay snapshots `prepared` was built against for
    /// the whole execution.
    GraphView view;
    uint64_t epoch = 0;
    bool cache_hit = false;
    VertexId source = kInvalidVertex;
  };

  /// Per-epoch record of what changed, for incremental recomputation: the
  /// edges inserted (as applied) and the concrete edge instances removed
  /// (with the weights they carried — the deletion cone needs them to test
  /// derivation consistency).
  struct EpochDelta {
    uint64_t epoch = 0;
    std::vector<EdgeRecord> inserts;
    std::vector<EdgeRecord> deletes;
  };

  /// Returns the current-epoch live view (no fold, ever — a lock-shared
  /// read of the published snapshots). Repairs a dirty default source
  /// first (an O(V) rescan off the write path, only after a deletion
  /// shrank the tracked argmax).
  ViewRef CurrentViewRef() const;

  /// Folds the pending overlay and promotes the result to the new base.
  /// graph_mu_ must be held exclusively.
  Status CompactLocked();

  /// One ingest drain: moves queued batches onto the worker-local backlog
  /// and applies them front-first through ApplyMutations. A pre-apply
  /// failure (injected drain fault) leaves the batch at the backlog head
  /// and asks the supervisor for a retry with backoff; a mid-apply failure
  /// is not retryable (the batch may be partially applied — a replay would
  /// double-apply its inserts) and is counted and dropped instead. Runs on
  /// the ingest worker.
  CycleResult IngestCycle();

  /// One background fold: captures the overlay under the write lock,
  /// materializes the new base off every lock, then republishes —
  /// re-applying the mutation batches that landed during the fold onto a
  /// fresh overlay over the new base. A failed fold (injected fault,
  /// storage failure during Materialize or replay) abandons the capture —
  /// the live overlay still holds every mutation — and retries with
  /// backoff; queries keep serving on the unfolded chain meanwhile. Runs
  /// on the BackgroundCompactor worker.
  CycleResult BackgroundFoldCycle();

  /// Storage-failure bracketing: kernels fetch adjacency through a void
  /// interface, so a failed block load surfaces as a bump of the block
  /// cache's fetch-failure counter rather than a Status. Take a mark
  /// before a fallible region and check it after: an increase converts to
  /// kUnavailable (conservative — a concurrent caller's failure trips the
  /// check too, which costs a spurious-but-safe retryable abort).
  uint64_t StorageFailureMark() const;
  Status CheckStorageSince(uint64_t mark, const char* what) const;

  /// Maintains the incremental degree argmax across `batch`'s touched
  /// sources. graph_mu_ must be held exclusively; O(|batch|).
  void UpdateDefaultSourceLocked(const MutationBatch& batch);

  /// Rescans for the highest-out-degree vertex when a deletion invalidated
  /// the tracked argmax. The O(V) scan runs on a pinned view outside the
  /// write lock; the result is installed only if no epoch raced it.
  void RepairDefaultSourceIfDirty() const;

  Result<PlannedQuery> Plan(const Query& query, const SolverOptions& base);
  /// Plan against an already-captured snapshot (the epoch-pinned batch
  /// path; Plan captures its own).
  Result<PlannedQuery> PlanOn(const Query& query, const SolverOptions& base,
                              const ViewRef& snapshot);
  Result<std::shared_ptr<const PreparedGraph>> GetPrepared(
      const SolverOptions& effective, const ViewRef& snapshot,
      bool* cache_hit);
  Result<QueryResult> Execute(const PlannedQuery& plan) const;
  /// Fans `plans` out over the process thread pool (queries are the
  /// parallel unit); results index-aligned with `plans`.
  Result<std::vector<QueryResult>> ExecutePlans(
      const std::vector<PlannedQuery>& plans) const;

  /// Spills `fresh`'s edge arrays to the block store and releases the
  /// in-memory copies. When `sibling_of` is non-null the new store shares
  /// its IO throttle (one virtual spindle per engine); otherwise a fresh
  /// store is built over the engine's cache + prefetcher. Returns null —
  /// and leaves `fresh` resident — when storage is disabled or the spill
  /// fails (warning logged).
  std::shared_ptr<const EdgeBlockStore> MaybeSpill(
      const std::shared_ptr<CsrGraph>& fresh,
      const std::shared_ptr<const EdgeBlockStore>& sibling_of) const;

  SolverOptions default_options_;

  /// Immutable for the engine's lifetime (mutations add/remove edges, not
  /// vertices) — EnqueueMutations validates against it without any lock.
  VertexId num_vertices_ = 0;

  /// Out-of-core state. The cache and prefetcher are shared by every
  /// EdgeBlockStore this engine ever creates (base, reverse transpose,
  /// hub-relabeled copies, folded snapshots) so the byte budget is global.
  /// Declared before graph_mu_/base_ so stores (which reference them)
  /// are destroyed first.
  StorageOptions storage_options_;
  std::shared_ptr<BlockCache> block_cache_;
  std::shared_ptr<Prefetcher> prefetcher_;

  /// Guards the mutation state below. Writers (ApplyMutations, Compact)
  /// publish new immutable snapshots; readers copy shared_ptrs out.
  mutable std::shared_mutex graph_mu_;
  std::shared_ptr<const CsrGraph> base_;          // last folded snapshot
  /// Block store backing base_ when out of core; null when in memory.
  std::shared_ptr<const EdgeBlockStore> store_;
  std::shared_ptr<const DeltaOverlay> overlay_;   // pending delta (COW)
  GraphView view_;                                // base_ + overlay_
  uint64_t epoch_ = 0;
  /// The tracked degree argmax (lowest id wins ties), maintained in
  /// O(|batch|) per publication. When a deletion shrinks the argmax's own
  /// degree an untouched vertex may overtake it, so the entry goes dirty
  /// and the next reader rescans (mutable: repaired from const readers).
  mutable VertexId default_source_ = kInvalidVertex;
  mutable EdgeId default_source_degree_ = 0;
  mutable bool default_source_dirty_ = false;
  SnapshotCompactor compactor_;
  /// True between a background fold's overlay capture and its publication;
  /// batches applied in that window are buffered in fold_window_ and
  /// re-applied onto the new base when the fold publishes.
  bool fold_in_flight_ = false;
  std::vector<MutationBatch> fold_window_;
  /// Per-epoch deltas for incremental seed computation; entries older than
  /// the CompactionPolicy horizon are retired (snapshot GC), and
  /// log_floor_epoch_ records the newest retired epoch.
  std::deque<EpochDelta> mutation_log_;
  uint64_t log_floor_epoch_ = 0;
  /// Bumped by CompactLocked; see ViewRef::layout.
  uint64_t layout_version_ = 0;

  struct CacheEntry {
    uint64_t epoch = 0;
    uint64_t layout = 0;
    /// Keeps the base/overlay snapshots the preparation references alive.
    GraphView view;
    std::shared_ptr<const PreparedGraph> prepared;
  };

  mutable std::mutex mu_;
  std::map<std::string, CacheEntry> prepared_;
  EngineCacheStats stats_;

  /// Wait-free ingest state: producers push here (EnqueueMutations), the
  /// ingest worker drains through ApplyMutations. The queue has its own
  /// internal synchronization; the counters are plain atomics.
  MutationQueue ingest_queue_;
  std::atomic<uint64_t> ingested_batches_{0};
  std::atomic<uint64_t> ingest_failures_{0};
  /// Batches drained from ingest_queue_ but not yet applied — the retry
  /// seat for pre-apply failures. Touched only by the ingest worker
  /// thread, so it needs no lock.
  std::deque<MutationBatch> ingest_backlog_;

  /// Per-subsystem failure accounting behind Health(). Mutable: storage
  /// failures are detected inside const query paths.
  mutable HealthTracker health_;

  /// The fold-queue worker (CompactionMode::kBackground only, null
  /// otherwise). Declared last and reset first in ~Engine: the worker's
  /// fold cycle touches every member above.
  std::unique_ptr<BackgroundCompactor> background_;
  /// The ingest-drain worker (always present; idle until the first
  /// EnqueueMutations). Reset before background_ in ~Engine — its drain
  /// cycle can enqueue folds on the fold worker.
  std::unique_ptr<BackgroundCompactor> ingest_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_ENGINE_H_
