// hytgraph::Engine — the one public entry point of the library.
//
// The Engine owns a CsrGraph and serves typed Query objects against it:
//
//   Engine engine(std::move(graph));                 // HyTGraph defaults
//   auto sssp = engine.Run({.algorithm = AlgorithmId::kSssp, .source = 0});
//   auto ranks = engine.Run({.algorithm = AlgorithmId::kPageRank});
//
// Three things distinguish it from calling the solver directly:
//
//  * Cached preparation. The hub-sorted vertex order HyTGraph's
//    contribution-driven scheduling needs (Section VI-A) is expensive to
//    build; the Engine memoizes PreparedGraph instances keyed by an options
//    fingerprint, so repeated queries — and every query of a batch — reuse
//    one preparation. QueryResult reports per-query hit/miss plus the
//    engine-wide counters.
//
//  * Registry dispatch. Queries name an AlgorithmId; the Engine resolves it
//    through the algorithm registry (algorithms/registry.h), which covers
//    all six built-in algorithms with typed per-algorithm parameters.
//
//  * Batched execution. RunBatch fans a vector of queries (same or mixed
//    algorithms, multiple sources) out over the process thread pool;
//    per-query results are deterministic and identical to sequential Run
//    calls (bitwise for the value-selection family, whose fixpoints are
//    schedule-independent).
//
// Thread safety: Run/RunBatch may be called concurrently from multiple
// threads; the prepared-graph cache is internally synchronized.

#ifndef HYTGRAPH_CORE_ENGINE_H_
#define HYTGRAPH_CORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "algorithms/registry.h"
#include "algorithms/runner.h"
#include "core/options.h"
#include "core/trace.h"
#include "graph/csr_graph.h"
#include "util/status.h"

namespace hytgraph {

/// One unit of work: which algorithm, from where, with which parameters.
struct Query {
  AlgorithmId algorithm = AlgorithmId::kSssp;
  /// Source vertex for the source-seeded algorithms (BFS, SSSP, PHP, SSWP).
  /// kInvalidVertex selects the engine default (highest out-degree vertex);
  /// ignored by PR and CC.
  VertexId source = kInvalidVertex;
  AlgoParams params;
};

/// Engine-wide preparation-cache counters.
struct EngineCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
};

/// The result of one query: values in original vertex ids, the execution
/// trace, and what the preparation cache did for this query.
struct QueryResult {
  AlgorithmId algorithm = AlgorithmId::kSssp;
  /// The resolved source (kInvalidVertex for algorithms without one).
  VertexId source = kInvalidVertex;
  QueryValues values;
  RunTrace trace;
  /// True when this query reused a cached PreparedGraph (no hub re-sort).
  bool prepared_cache_hit = false;
  /// Engine-wide cache counters snapshotted after this query resolved.
  EngineCacheStats cache_stats;

  bool is_f64() const {
    return std::holds_alternative<std::vector<double>>(values);
  }
  const std::vector<uint32_t>& u32() const {
    return std::get<std::vector<uint32_t>>(values);
  }
  const std::vector<double>& f64() const {
    return std::get<std::vector<double>>(values);
  }
};

class Engine {
 public:
  /// Takes ownership of `graph`. `default_options` configure queries that
  /// do not pass explicit options (and the simulated platform for those
  /// that do not care).
  explicit Engine(CsrGraph graph,
                  SolverOptions default_options =
                      SolverOptions::Defaults(SystemKind::kHyTGraph));

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const CsrGraph& graph() const { return graph_; }
  const SolverOptions& default_options() const { return default_options_; }

  /// The source used when a query does not name one: the highest
  /// out-degree vertex (kInvalidVertex on an empty graph).
  VertexId DefaultSource() const { return default_source_; }

  /// Runs one query under the engine default options.
  Result<QueryResult> Run(const Query& query);
  /// Runs one query under explicit options (ablations, baseline systems).
  Result<QueryResult> Run(const Query& query, const SolverOptions& options);

  /// Executes `queries` concurrently on the process thread pool, sharing
  /// cached preparations. Results are index-aligned with `queries` and
  /// identical to sequential Run calls; the first failing query's status is
  /// returned on error.
  Result<std::vector<QueryResult>> RunBatch(const std::vector<Query>& queries);
  Result<std::vector<QueryResult>> RunBatch(const std::vector<Query>& queries,
                                            const SolverOptions& options);

  EngineCacheStats cache_stats() const;

  /// Drops all memoized preparations (counters are kept).
  void ClearPreparedCache();

 private:
  /// A query resolved against the cache and ready to execute.
  struct PlannedQuery {
    Query query;
    SolverOptions options;  // effective (per-algorithm fixups applied)
    std::shared_ptr<const PreparedGraph> prepared;
    bool cache_hit = false;
    VertexId source = kInvalidVertex;
  };

  Result<PlannedQuery> Plan(const Query& query, const SolverOptions& base);
  Result<std::shared_ptr<const PreparedGraph>> GetPrepared(
      const SolverOptions& effective, bool* cache_hit);
  Result<QueryResult> Execute(const PlannedQuery& plan) const;

  CsrGraph graph_;
  SolverOptions default_options_;
  VertexId default_source_ = kInvalidVertex;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const PreparedGraph>> prepared_;
  EngineCacheStats stats_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_ENGINE_H_
