#include "core/options.h"

#include <cmath>

#include "core/task.h"

namespace hytgraph {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kFilter:
      return "E-F";
    case EngineKind::kCompaction:
      return "E-C";
    case EngineKind::kZeroCopy:
      return "I-ZC";
    case EngineKind::kUnifiedMemory:
      return "I-UM";
    case EngineKind::kCpu:
      return "CPU";
  }
  return "?";
}

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kHyTGraph:
      return "HyTGraph";
    case SystemKind::kExpFilter:
      return "ExpTM-F";
    case SystemKind::kSubway:
      return "Subway";
    case SystemKind::kEmogi:
      return "EMOGI";
    case SystemKind::kImpUm:
      return "ImpTM-UM";
    case SystemKind::kGrus:
      return "Grus";
    case SystemKind::kCpu:
      return "Galois(CPU)";
  }
  return "?";
}

Result<SystemKind> ParseSystemKind(const std::string& name) {
  for (SystemKind kind :
       {SystemKind::kHyTGraph, SystemKind::kExpFilter, SystemKind::kSubway,
        SystemKind::kEmogi, SystemKind::kImpUm, SystemKind::kGrus,
        SystemKind::kCpu}) {
    if (name == SystemKindName(kind)) return kind;
  }
  return Status::NotFound("unknown system: " + name);
}

const char* TraversalDirectionName(TraversalDirection direction) {
  switch (direction) {
    case TraversalDirection::kPush:
      return "push";
    case TraversalDirection::kPull:
      return "pull";
    case TraversalDirection::kAuto:
      return "auto";
  }
  return "?";
}

Result<TraversalDirection> ParseTraversalDirection(const std::string& name) {
  for (TraversalDirection direction :
       {TraversalDirection::kPush, TraversalDirection::kPull,
        TraversalDirection::kAuto}) {
    if (name == TraversalDirectionName(direction)) return direction;
  }
  return Status::NotFound("unknown direction: " + name +
                          " (push|pull|auto)");
}

SolverOptions SolverOptions::Defaults(SystemKind system) {
  SolverOptions opts;
  opts.system = system;
  opts.gpu = DefaultGpu();
  switch (system) {
    case SystemKind::kHyTGraph:
      opts.extra_rounds = 1;  // "recomputes the loaded subgraph only once"
      break;
    case SystemKind::kSubway:
      opts.extra_rounds = -1;  // multi-round until local convergence
      opts.enable_task_combining = false;
      opts.enable_contribution_scheduling = false;
      break;
    default:
      opts.extra_rounds = 0;  // synchronous baselines
      opts.enable_task_combining = false;
      opts.enable_contribution_scheduling = false;
      break;
  }
  return opts;
}

Status SolverOptions::Validate() const {
  if (alpha <= 0 || alpha > 1) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (beta <= 0 || beta > 1) {
    return Status::InvalidArgument("beta must be in (0, 1]");
  }
  if (gamma < 0 || gamma > 1) {
    return Status::InvalidArgument("gamma must be in [0, 1]");
  }
  if (combine_k < 1) {
    return Status::InvalidArgument("combine_k must be >= 1");
  }
  if (hub_fraction < 0 || hub_fraction > 1) {
    return Status::InvalidArgument("hub_fraction must be in [0, 1]");
  }
  if (num_streams < 1) {
    return Status::InvalidArgument("num_streams must be >= 1");
  }
  if (num_workers < 0) {
    return Status::InvalidArgument("num_workers must be >= 0 (0 = auto)");
  }
  if (gpu.pcie_bandwidth <= 0 || gpu.mem_bandwidth <= 0) {
    return Status::InvalidArgument("gpu spec not initialized");
  }
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be > 0");
  }
  // isfinite: NaN compares false against <= 0 and would otherwise slip
  // through, making every auto-mode threshold comparison silently false.
  if (!std::isfinite(direction_alpha) || direction_alpha <= 0) {
    return Status::InvalidArgument("direction_alpha must be finite and > 0");
  }
  if (!std::isfinite(direction_beta) || direction_beta <= 0) {
    return Status::InvalidArgument("direction_beta must be finite and > 0");
  }
  return Status::OK();
}

}  // namespace hytgraph
