#include "core/priority_scheduler.h"

#include <algorithm>

namespace hytgraph {

namespace {

/// Engine dispatch rank: filter first, then zero-copy, then compaction
/// (Section VI-B ordering; compaction's CPU stage overlaps earlier tasks).
int EngineRank(EngineKind engine) {
  switch (engine) {
    case EngineKind::kFilter:
      return 0;
    case EngineKind::kZeroCopy:
      return 1;
    case EngineKind::kCompaction:
      return 2;
    default:
      return 3;
  }
}

}  // namespace

void ScheduleTasks(std::vector<Task>* tasks, const IterationState& state,
                   const PrioritySchedulerOptions& options) {
  // CDS off (Fig. 8 ablation) means *submission order*: return before any
  // priority computation or sort so the task list is left untouched — the
  // per-iteration pass used to pay a full priority build plus a stable
  // sort only to re-derive an order close to the input's.
  if (!options.enabled) return;
  for (Task& task : *tasks) {
    if (options.delta_driven) {
      double delta = 0;
      for (uint32_t p : task.partitions) delta += state.stats[p].delta_sum;
      task.priority = delta;
    } else {
      // Hub-driven: hub sorting gathered important vertices at the lowest
      // ids, so lower-numbered partitions rank higher.
      const uint32_t first =
          task.partitions.empty() ? 0 : task.partitions.front();
      task.priority = -static_cast<double>(first);
    }
  }
  // Stable sort keeps submission order among equals (determinism).
  std::stable_sort(tasks->begin(), tasks->end(),
                   [](const Task& a, const Task& b) {
                     const int ra = EngineRank(a.engine);
                     const int rb = EngineRank(b.engine);
                     if (ra != rb) return ra < rb;
                     return a.priority > b.priority;
                   });
}

}  // namespace hytgraph
