// Contribution-driven priority scheduling (Section VI-A). Orders the
// iteration's tasks so that partitions contributing most to convergence are
// processed first, letting later tasks observe their updates (asynchronous
// execution):
//
//  * Hub-vertex-driven: after hub sorting, the important vertices occupy the
//    lowest ids, so tasks covering lower partition ids carry the hubs —
//    they run first. (Used by traversal/selection algorithms: SSSP, BFS, CC.)
//  * Delta-driven: for accumulation algorithms (PageRank, PHP) tasks are
//    ordered by the sum of pending |delta| over their active vertices.
//
// Engine classes keep the paper's dispatch order: ExpTM-filter tasks first
// (priority-ordered), then ImpTM-zero-copy, then ExpTM-compaction (whose CPU
// stage overlaps the others on the stream timeline).

#ifndef HYTGRAPH_CORE_PRIORITY_SCHEDULER_H_
#define HYTGRAPH_CORE_PRIORITY_SCHEDULER_H_

#include <vector>

#include "core/task.h"
#include "engine/partition_state.h"

namespace hytgraph {

struct PrioritySchedulerOptions {
  /// Master switch (Fig. 8 ablation: CDS off = submission order).
  bool enabled = true;
  /// True when the program exposes per-vertex deltas (PR/PHP).
  bool delta_driven = false;
};

/// Computes task priorities and sorts `tasks` into dispatch order in place.
/// `state` supplies per-partition delta sums for delta-driven mode. When
/// `options.enabled` is false the list is left completely untouched
/// (submission order, priorities unmodified) — no per-iteration priority
/// build or sort is paid.
void ScheduleTasks(std::vector<Task>* tasks, const IterationState& state,
                   const PrioritySchedulerOptions& options);

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_PRIORITY_SCHEDULER_H_
