#include "core/trace.h"

namespace hytgraph {

const char* IncrementalFallbackName(IncrementalFallback reason) {
  switch (reason) {
    case IncrementalFallback::kNone:
      return "none";
    case IncrementalFallback::kUnsupportedAlgorithm:
      return "unsupported-algorithm";
    case IncrementalFallback::kDeletionDelta:
      return "deletion-delta";
    case IncrementalFallback::kRetiredLog:
      return "retired-log";
  }
  return "unknown";
}

uint64_t RunTrace::TotalTransferredBytes() const {
  uint64_t total = 0;
  for (const IterationTrace& it : iterations) {
    total += it.transfers.TotalTransferredBytes();
  }
  return total;
}

uint64_t RunTrace::TotalKernelEdges() const {
  uint64_t total = 0;
  for (const IterationTrace& it : iterations) {
    total += it.transfers.kernel_edges;
  }
  return total;
}

double RunTrace::TotalTransferSeconds() const {
  double total = 0;
  for (const IterationTrace& it : iterations) total += it.transfer_seconds;
  return total;
}

double RunTrace::TotalKernelSeconds() const {
  double total = 0;
  for (const IterationTrace& it : iterations) total += it.kernel_seconds;
  return total;
}

uint64_t RunTrace::PullIterations() const {
  uint64_t total = 0;
  for (const IterationTrace& it : iterations) {
    if (it.direction == TraversalDirection::kPull) ++total;
  }
  return total;
}

double RunTrace::TotalCompactionSeconds() const {
  double total = 0;
  for (const IterationTrace& it : iterations) total += it.compaction_seconds;
  return total;
}

}  // namespace hytgraph
