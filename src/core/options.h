// Solver configuration: which system to emulate, on which simulated GPU,
// with which HyTGraph features enabled. Every paper parameter lives here
// with its published default.

#ifndef HYTGRAPH_CORE_OPTIONS_H_
#define HYTGRAPH_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "sim/gpu_spec.h"
#include "sim/pcie_model.h"
#include "util/status.h"

namespace hytgraph {

/// The systems compared in Table V. Each maps to a transfer-management
/// policy implemented on the shared simulator substrate.
enum class SystemKind {
  kHyTGraph = 0,   // hybrid transfer management + TC + CDS (this paper)
  kExpFilter = 1,  // pure ExpTM-filter          (GraphReduce/Graphie style)
  kSubway = 2,     // ExpTM-compaction, multi-round async (Subway)
  kEmogi = 3,      // ImpTM-zero-copy, synchronous (EMOGI)
  kImpUm = 4,      // pure ImpTM-unified-memory   (HALO style)
  kGrus = 5,       // UM cache + zero-copy spill  (Grus)
  kCpu = 6,        // shared-memory CPU baseline  (Galois stand-in)
};

const char* SystemKindName(SystemKind kind);
Result<SystemKind> ParseSystemKind(const std::string& name);

/// Per-iteration traversal direction of the solver loop. Push relaxes the
/// out-edges of the active list; pull gathers over the reverse view from
/// every candidate vertex, testing frontier membership in the bitmap. Auto
/// switches per iteration with Beamer-style thresholds (direction_alpha /
/// direction_beta below). Only the value-selection family (BFS/SSSP/CC/
/// SSWP) can pull; PR/PHP are pinned to push (delta accumulation).
enum class TraversalDirection {
  kPush = 0,
  kPull = 1,
  kAuto = 2,
};

const char* TraversalDirectionName(TraversalDirection direction);
Result<TraversalDirection> ParseTraversalDirection(const std::string& name);

struct SolverOptions {
  SystemKind system = SystemKind::kHyTGraph;

  /// Simulated platform.
  GpuSpec gpu;  // default-initialized; set via Default() helpers
  PcieModelOptions pcie;
  /// Overrides gpu.device_memory when nonzero (dataset-scaled budgets).
  uint64_t device_memory_override = 0;

  /// Partition size in bytes of edge data. 0 = auto: edge_bytes / 256,
  /// clamped to [64 KiB, 32 MiB] — preserving the paper's ~256-partition
  /// regime at simulator scale.
  uint64_t partition_bytes = 0;

  /// --- HyTGraph knobs (paper defaults) ---
  double alpha = 0.8;        // compaction vs filter threshold
  double beta = 0.4;         // compaction vs zero-copy threshold
  double gamma = 0.625;      // zero-copy RTT dumpling factor
  int combine_k = 4;         // filter-task merge factor
  double hub_fraction = 0.08;
  int num_streams = 4;

  /// --- Parallel partition execution (beyond the paper) ---
  /// Worker lanes executing disjoint partition ranges truly in parallel,
  /// exchanging cross-partition activations through per-lane inboxes at
  /// the iteration barrier. 1 = the exact sequential reference path
  /// (byte-identical traces); 0 = auto (hardware concurrency). Simulated
  /// time under lanes is max-over-lanes of the same per-partition costs,
  /// so paper-figure numbers stay comparable.
  int num_workers = 1;

  /// Fig. 8 ablation switches.
  bool enable_task_combining = true;
  bool enable_contribution_scheduling = true;

  /// --- Direction-optimizing traversal (beyond the paper) ---
  /// kPush preserves the paper's push-only execution; kAuto enables the
  /// per-iteration hybrid (pull over the reverse view on dense frontiers).
  TraversalDirection direction = TraversalDirection::kPush;
  /// Auto mode switches push -> pull when the frontier's out-edges exceed
  /// |E| / direction_alpha (Beamer's alpha; larger = switch earlier).
  double direction_alpha = 14.0;
  /// Auto mode switches pull -> push when the active-vertex count drops
  /// below |V| / direction_beta (Beamer's beta; larger = switch back later).
  double direction_beta = 24.0;
  /// Auto mode reads the push kernels' incrementally maintained scout count
  /// (sum of activated out-degrees) for m_f instead of rescanning the
  /// frontier bitmap each decision. The values are identical (asserted in
  /// engine_direction_test); false forces the O(n_f) scan — an A/B switch,
  /// not a semantics knob.
  bool incremental_scout_count = true;

  /// Extra asynchronous rounds over a loaded subgraph. HyTGraph processes
  /// "only one more time"; Subway iterates to local convergence (-1 =
  /// unbounded, capped by kMaxLocalRounds).
  int extra_rounds = 1;

  /// Fixed per-task scheduling overhead (kernel launch + transfer setup) —
  /// the cost task combining amortizes.
  double task_overhead_seconds = 3e-6;

  /// Kernel-time model parameters (see sim/compute_model.h).
  double gpu_bytes_per_edge = 16.0;
  double gpu_efficiency = 0.15;
  double cpu_edges_per_second = 3.0e8;

  /// Safety caps.
  uint64_t max_iterations = 5000;
  int max_local_rounds = 64;

  /// Returns the paper-faithful configuration for a system on the default
  /// GPU (RTX 2080Ti).
  static SolverOptions Defaults(SystemKind system);

  /// Effective device memory for this run.
  uint64_t DeviceMemory() const {
    return device_memory_override != 0 ? device_memory_override
                                       : gpu.device_memory;
  }

  Status Validate() const;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_OPTIONS_H_
