// Task combination (Section V-B, Algorithm 1 lines 15-24). HyTGraph
// decouples graph partitioning (small 32 MB partitions for fine-grained cost
// analysis) from task scheduling (large tasks for low launch/transfer
// overhead):
//   * up to k consecutive ExpTM-filter partitions merge into one task;
//   * all ExpTM-compaction partitions merge into a single task whose active
//     edges are compacted into one contiguous buffer;
//   * all ImpTM-zero-copy partitions merge into a single task served by one
//     kernel (zero-copy overlaps transfer with compute implicitly).
// With combining disabled (the Fig. 8 "Hybrid" baseline), every active
// partition becomes its own task.

#ifndef HYTGRAPH_CORE_TASK_COMBINER_H_
#define HYTGRAPH_CORE_TASK_COMBINER_H_

#include <vector>

#include "core/cost_model.h"
#include "core/task.h"
#include "engine/partition_state.h"
#include "graph/partitioner.h"

namespace hytgraph {

struct TaskCombinerOptions {
  /// Max consecutive filter partitions per task (the paper's k = 4).
  int combine_k = 4;
  /// Master switch (Fig. 8 ablation).
  bool enabled = true;
};

/// Builds the iteration's task list from per-partition engine choices.
/// Inactive partitions are skipped entirely.
std::vector<Task> CombineTasks(const std::vector<Partition>& partitions,
                               const IterationState& state,
                               const std::vector<PartitionCosts>& costs,
                               const TaskCombinerOptions& options);

/// Range-limited variant over partitions [p_begin, p_end): the parallel
/// execution path builds one task list per lane from its owned partition
/// range. Combining is confined to the range (filter runs reset at lane
/// boundaries; the compaction/zero-copy merge tasks are per-lane, not
/// global) — at one lane covering all partitions this is byte-identical to
/// the full CombineTasks.
std::vector<Task> CombineTasks(const std::vector<Partition>& partitions,
                               const IterationState& state,
                               const std::vector<PartitionCosts>& costs,
                               const TaskCombinerOptions& options,
                               uint32_t p_begin, uint32_t p_end);

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_TASK_COMBINER_H_
