// Cost-aware engine selection (Section V-A). For each partition with active
// edges, evaluates the three transfer costs of formulas (1)-(3) in units of
// the saturated-TLP round trip (RTT cancels in every comparison, exactly as
// the paper notes: "the value of RTT can be arbitrarily specified") and
// applies the paper's decision procedure:
//
//   if  Tec < alpha * Tef  and  Tec < beta * Tiz   -> ExpTM-compaction
//   elif Tef < Tiz                                 -> ExpTM-filter
//   else                                           -> ImpTM-zero-copy
//
// with alpha = 0.8 (Subway's compaction-worthwhile threshold) and beta = 0.4
// (compaction beats zero-copy when the active set is dense in vertices but
// sparse in edges). Tec deliberately counts only the transfer term — the
// paper leaves Thpt_cpt out of the comparison because irregular host-memory
// throughput resists modelling (Section V-A, "In practice...").
//
// Under dynamic mutations the inputs are view-adjusted: PartitionStats come
// from the GraphView's merged degrees and logical offsets, and partitions
// built on a view report overlay-adjusted num_edges(). The decisions this
// model produces on a live view therefore equal the decisions it would
// produce on the folded-from-scratch CSR (property-tested in
// tests/dynamic_view_property_test.cc) — engine selection stays honest
// while a delta is pending, with no fold on the query path.

#ifndef HYTGRAPH_CORE_COST_MODEL_H_
#define HYTGRAPH_CORE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/task.h"
#include "engine/partition_state.h"
#include "graph/partitioner.h"

namespace hytgraph {

struct CostModelOptions {
  double alpha = 0.8;
  double beta = 0.4;
  double gamma = 0.625;
  /// d1: bytes per edge entry actually transferred (4 unweighted,
  /// 8 with weights).
  uint64_t bytes_per_edge = 4;
  /// d2: bytes per compacted-index entry.
  uint64_t bytes_per_index = 8;
  /// m: max payload of one outstanding request.
  uint64_t max_request_bytes = 128;
  /// MR: outstanding requests per TLP.
  uint64_t requests_per_tlp = 256;
  /// Per-partition scheduling overhead in RTT (saturated-TLP) units, added
  /// to the explicit-transfer costs Tef and Tec. Explicit engines pay a
  /// kernel launch + copy setup per combined task; the zero-copy engine
  /// amortizes one launch over every ZC partition of the iteration. The
  /// solver derives this from task_overhead_seconds / combine_k. (A small,
  /// documented extension of formulas (1)-(2): at paper scale the term is
  /// negligible, at simulator scale it keeps selection honest.)
  double explicit_overhead_tlps = 0.0;
  /// Out-of-core stream-in cost in RTT units per edge byte, charged to a
  /// partition whose blocks are not resident in the block cache (derived
  /// from StorageOptions::throttle_bytes_per_second; 0 = free / in-memory).
  /// Added *uniformly* to tef/tec/tiz: the same bytes stream from disk no
  /// matter which engine consumes them afterwards, so modeled totals stay
  /// honest while the engine choice — and therefore the executed schedule
  /// and the computed values — is identical to the in-memory run.
  double stream_tlps_per_byte = 0.0;
};

/// Costs of one partition in RTT units, plus the chosen engine.
struct PartitionCosts {
  double tef = 0;
  double tec = 0;
  double tiz = 0;
  EngineKind choice = EngineKind::kFilter;
};

class CostModel {
 public:
  explicit CostModel(const CostModelOptions& options) : options_(options) {}

  const CostModelOptions& options() const { return options_; }

  /// Formula (1): saturated TLPs to ship the whole partition.
  double FilterCost(uint64_t partition_edges) const;

  /// Formula (2), transfer term only: TLPs to ship compacted active edges
  /// plus the new index.
  double CompactionCost(uint64_t active_edges, uint64_t active_vertices) const;

  /// Formula (3): zero-copy TLPs weighted by the unsaturated round trip
  /// RTT_zc / RTT = gamma + (1-gamma) * activeRatio.
  double ZeroCopyCost(uint64_t zc_requests, uint64_t active_edges,
                      uint64_t partition_edges) const;

  /// Full evaluation + decision for one partition.
  PartitionCosts Evaluate(const PartitionStats& stats,
                          uint64_t partition_edges) const;

  /// Evaluates every active partition; inactive partitions get
  /// choice=kFilter with all costs zero (they are never scheduled).
  std::vector<PartitionCosts> EvaluateAll(
      const std::vector<Partition>& partitions,
      const IterationState& state) const;

 private:
  CostModelOptions options_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_COST_MODEL_H_
