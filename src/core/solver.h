// The solver: one iterative vertex-centric execution loop parameterized by
// (a) a vertex program (algorithms/) and (b) a transfer-management policy
// (SystemKind). HyTGraph and every baseline of Table V run through this
// loop on the shared simulator substrate, so measured differences isolate
// the transfer-management policy — the variable the paper studies.
//
// The loop executes on a GraphView (base CSR + optional mutation delta):
// partition geometry, activity stats, and transfer accounting all use the
// view's logical (folded-CSR) offsets while edge expansion merges the
// overlay on the fly, so queries on a mutated graph run without any
// snapshot fold on the critical path.
//
// Per iteration:
//   1. Pick the traversal direction (SolverOptions::direction): push runs
//      the paper's transfer-managed task pipeline below; pull runs a dense
//      gather over the view's reverse side (RunPullKernel). Auto switches
//      with Beamer-style thresholds — push -> pull when the frontier's
//      out-edges exceed |E|/direction_alpha, pull -> push when the active
//      count drops below |V|/direction_beta. Slow-settling programs
//      (Program::kPullCandidatesLinger — SSSP/SSWP, whose unsettled
//      candidate set stays large long after the frontier shrinks) add a
//      measured-cost feedback term: pull is entered or retained only
//      while the frontier's out-edges (what push would relax) cover the
//      last pull iteration's gathered in-edge count (what pull actually
//      paid). Only the value-selection family can pull; PR/PHP are
//      pinned to push at compile time.
//   2. Resolve the frontier against the partitioning (engine/partition_state)
//   3. Generate tasks: HyTGraph runs cost-aware selection (formulas (1)-(3))
//      + task combination; baselines force a single engine
//   4. Order tasks (contribution-driven priority scheduling)
//   5. Execute: host threads produce exact results while the PCIe/compute
//      models accumulate simulated time on a multi-stream timeline
//   6. Swap frontiers; repeat to convergence.
//
// Program concept:
//   struct Program {
//     using Value = ...;
//     static constexpr bool kNeedsWeights;  // SSSP/PHP: true
//     static constexpr bool kHasDelta;      // PR/PHP: true
//     void InitFrontier(Frontier* frontier);
//     struct VertexContext {...};
//     bool BeginVertex(VertexId u, VertexContext* ctx);
//     bool ProcessEdge(const VertexContext& ctx, VertexId u, VertexId v,
//                      Weight w);
//     double DeltaOf(VertexId v) const;     // only if kHasDelta
//   };

#ifndef HYTGRAPH_CORE_SOLVER_H_
#define HYTGRAPH_CORE_SOLVER_H_

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cost_model.h"
#include "core/lane_state.h"
#include "core/options.h"
#include "core/priority_scheduler.h"
#include "core/task.h"
#include "core/task_combiner.h"
#include "core/trace.h"
#include "engine/compactor.h"
#include "engine/frontier.h"
#include "engine/kernels.h"
#include "engine/partition_state.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/partitioner.h"
#include "sim/compute_model.h"
#include "sim/device_memory.h"
#include "sim/pcie_model.h"
#include "sim/stream_timeline.h"
#include "sim/transfer_stats.h"
#include "sim/unified_memory.h"
#include "sim/zero_copy.h"
#include "util/lane_team.h"
#include "util/math_util.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hytgraph {

template <typename Program>
class Solver {
 public:
  /// Runs on a live GraphView: the base CSR with any pending mutation
  /// delta merged on the fly. The view pins its base/overlay snapshots for
  /// the solver's lifetime.
  Solver(GraphView view, SolverOptions options)
      : view_(std::move(view)), options_(std::move(options)) {}

  /// Static-graph convenience: a transparent view over `graph`, which must
  /// outlive the solver.
  Solver(const CsrGraph& graph, SolverOptions options)
      : Solver(GraphView::Wrap(graph), std::move(options)) {}

  /// Validates options, accounts device memory, partitions the graph, and
  /// sets up the transfer engines. Must be called (successfully) before Run.
  Status Init() {
    HYT_RETURN_NOT_OK(options_.Validate());

    bytes_per_edge_ =
        kBytesPerNeighbor +
        (Program::kNeedsWeights && view_.is_weighted() ? sizeof(Weight) : 0);

    // Device memory: vertex-associated data is always resident (paper
    // Section I assumption); if it does not fit, this platform cannot run
    // the graph at all (the paper's hyper-scale limitation, Section VIII).
    device_memory_ =
        std::make_unique<DeviceMemory>(options_.DeviceMemory());
    HYT_RETURN_NOT_OK(device_memory_->Allocate(
        "vertex_data",
        view_.VertexDataBytes(sizeof(typename Program::Value))));

    // Partitioning: 32 MB in the paper; auto mode scales to keep the
    // ~256-partition regime at simulator scale.
    PartitionerOptions popts;
    popts.bytes_per_edge = bytes_per_edge_;
    popts.partition_bytes = options_.partition_bytes;
    if (popts.partition_bytes == 0) {
      const uint64_t edge_bytes = view_.num_edges() * bytes_per_edge_;
      popts.partition_bytes =
          std::clamp<uint64_t>(edge_bytes / 256, KiB(64), MiB(32));
    }
    // Partition the *view*: boundaries and per-partition edge counts come
    // from the logical (folded) offsets, so formulas (1)-(3) see the
    // mutated graph's partition geometry.
    HYT_ASSIGN_OR_RETURN(partitions_, PartitionGraph(view_, popts));

    pcie_ = std::make_unique<PcieModel>(options_.gpu, options_.pcie);
    zc_access_ = std::make_unique<ZeroCopyAccess>(pcie_.get());
    gpu_model_ = std::make_unique<GpuComputeModel>(
        options_.gpu, options_.gpu_bytes_per_edge, options_.gpu_efficiency);
    cpu_model_ =
        std::make_unique<CpuComputeModel>(options_.cpu_edges_per_second);

    CostModelOptions cmo;
    cmo.alpha = options_.alpha;
    cmo.beta = options_.beta;
    cmo.gamma = options_.gamma;
    cmo.bytes_per_edge = bytes_per_edge_;
    cmo.max_request_bytes = options_.pcie.max_request_bytes;
    cmo.requests_per_tlp = options_.pcie.requests_per_tlp;
    // Per-partition share of the per-task launch/setup overhead (transfer +
    // kernel phases), amortized over combine_k partitions per filter task,
    // expressed in saturated-TLP round trips.
    cmo.explicit_overhead_tlps = 2.0 * options_.task_overhead_seconds /
                                 options_.combine_k /
                                 pcie_->SaturatedTlpSeconds();
    if (view_.base_streamed()) {
      const uint64_t stream_bps =
          view_.storage()->options().throttle_bytes_per_second;
      if (stream_bps > 0) {
        // Host-disk stream-in for non-resident partitions, in the same RTT
        // units as formulas (1)-(3). Charged uniformly across engines, so
        // the selection is unchanged (see CostModelOptions).
        cmo.stream_tlps_per_byte =
            1.0 / (static_cast<double>(stream_bps) *
                   pcie_->SaturatedTlpSeconds());
      }
    }
    cost_model_ = std::make_unique<CostModel>(cmo);

    // Staging budget for loaded subgraphs: whatever device memory the
    // vertex data left. A compacted subgraph larger than this cannot be
    // resident at once — Subway must chunk it, and cross-chunk updates wait
    // for the next global iteration (this is what makes Subway retransfer
    // on PageRank instead of converging locally in one shot).
    staging_budget_bytes_ = device_memory_->available();

    if (options_.system == SystemKind::kImpUm ||
        options_.system == SystemKind::kGrus) {
      // UM page cache gets whatever device memory the vertex data left.
      const uint64_t cache_bytes =
          std::max<uint64_t>(options_.pcie.page_bytes,
                             device_memory_->available());
      um_engine_ = std::make_unique<UnifiedMemoryEngine>(
          view_.num_edges() * bytes_per_edge_, cache_bytes,
          options_.pcie.page_bytes);
    }
    initialized_ = true;
    return Status::OK();
  }

  /// Runs `program` to convergence. Returns the execution trace; program
  /// state (the values) is the result payload, owned by the caller.
  Result<RunTrace> Run(Program* program) {
    if (!initialized_) {
      return Status::FailedPrecondition("Solver::Init() not called");
    }
    stats_.Reset();
    if (um_engine_ != nullptr) um_engine_->Invalidate();

    // Parallel partition execution: resolve the lane count once per run and
    // fix each lane's partition ownership for the query's lifetime.
    // num_lanes == 1 takes the exact sequential reference path below — no
    // team, no lane state, byte-identical traces to the pre-lane solver.
    const int num_lanes = ResolveLaneCount();
    std::vector<std::unique_ptr<LaneState>> lane_states;
    std::vector<VertexId> lane_starts;
    std::unique_ptr<LaneTeam> team;
    if (num_lanes > 1) {
      AssignLanes(num_lanes, &lane_states, &lane_starts);
      team = std::make_unique<LaneTeam>(num_lanes);
    }

    Frontier frontier_a(view_);
    Frontier frontier_b(view_);
    Frontier* current = &frontier_a;
    Frontier* next = &frontier_b;
    program->InitFrontier(current);
    // Cold-start read-ahead: the first iteration's blocks stream while the
    // partition stats below are still being built.
    PostPrefetchHints(*current);

    // Direction machinery engages only for pull-capable programs under a
    // non-push option; PR/PHP (and programs without pull hooks) compile to
    // the push-only loop regardless of options_.direction.
    bool pulling = false;
    // Measured cost of the most recent pull gather (in-edges scanned).
    // Auto mode enters or retains pull only while the frontier's
    // out-edges cover it: after an unprofitable gather this suppresses
    // both retention and alpha re-entry until the frontier outgrows the
    // observed pull cost (0 before any pull, so first entry is pure
    // Beamer alpha).
    uint64_t last_pull_edges = 0;
    if constexpr (PullCapableProgram<Program>) {
      pulling = options_.direction == TraversalDirection::kPull;
    }

    RunTrace trace;
    trace.num_lanes = num_lanes;
    for (uint64_t iter = 0; iter < options_.max_iterations; ++iter) {
      const uint64_t active = current->CountActive();  // O(1): incremental
      if (active == 0) {
        trace.converged = true;
        break;
      }

      if constexpr (PullCapableProgram<Program>) {
        if (options_.direction != TraversalDirection::kPush) {
          // m_f is scanned only when the direction decision needs it;
          // forced kPull skips the O(n_f) pass (active_edges stays 0 in
          // its trace rows — the scanned in-edge count lands in
          // transfers.kernel_edges instead).
          uint64_t frontier_edges = 0;
          if (options_.direction == TraversalDirection::kAuto) {
            // Beamer-style hybrid: m_f from the view-adjusted degrees (the
            // same estimate the cost formulas consume), n_f from the O(1)
            // frontier count. The push kernels maintain m_f incrementally
            // (Frontier's scout count), so steady-state push iterations
            // read it in O(1); the O(n_f) bitmap scan remains only as the
            // fallback for frontiers a scout-blind producer touched
            // (InitFrontier, the pull kernel) — scout-valid frontiers
            // carry exactly the sum the scan would compute.
            frontier_edges =
                options_.incremental_scout_count && current->ScoutValid()
                    ? current->ScoutCount()
                    : FrontierActiveEdges(view_, *current);
            const bool threshold =
                pulling ? static_cast<double>(active) *
                                  options_.direction_beta >=
                              static_cast<double>(view_.num_vertices())
                        : static_cast<double>(frontier_edges) *
                                  options_.direction_alpha >
                              static_cast<double>(view_.num_edges());
            pulling = threshold;
            // Feedback for slow-settling programs (kPullCandidatesLinger):
            // pull only while push's cost (m_f) covers what the last
            // gather measurably paid — the last gather predicts the next
            // one when candidates are rescanned until a moving floor
            // catches them. Keeps SSSP/SSWP from lingering in (or
            // bouncing straight back into) an unprofitable direction.
            // BFS/CC candidates settle permanently, collapsing successive
            // gather costs, so there the stale measurement would exit
            // profitable pull phases — pure Beamer thresholds steer them.
            if constexpr (Program::kPullCandidatesLinger) {
              pulling = pulling && frontier_edges >= last_pull_edges;
            }
          }
          if (pulling) {
            trace.iterations.push_back(
                num_lanes > 1
                    ? RunParallelPullIteration(team.get(), &lane_states,
                                               *current, next, frontier_edges,
                                               active, &trace, program)
                    : RunPullIteration(*current, next, frontier_edges, active,
                                       &trace, program));
            last_pull_edges = trace.iterations.back().transfers.kernel_edges;
            std::swap(current, next);
            next->Clear();
            continue;
          }
        }
      }

      if (num_lanes > 1) {
        trace.iterations.push_back(RunParallelPushIteration(
            team.get(), &lane_states, lane_starts, *current, next, &trace,
            program));
      } else {
        IterationState state =
            BuildState(*current, program, std::move(actives_scratch_));
        std::vector<Task> tasks = GenerateTasks(state);
        SplitOversizedCompactionTasks(&tasks, state);

        PrioritySchedulerOptions pso;
        pso.enabled = options_.enable_contribution_scheduling;
        pso.delta_driven = Program::kHasDelta;
        ScheduleTasks(&tasks, state, pso);
        OverlapStreamIn(&tasks, state);

        StreamTimeline timeline(options_.num_streams);
        IterationTrace it;
        it.active_vertices = state.total_active_vertices();
        it.active_edges = state.total_active_edges;
        it.num_tasks = static_cast<uint32_t>(tasks.size());
        const TransferStatsSnapshot before = stats_.Snapshot();

        for (const Task& task : tasks) {
          ExecuteTask(task, state, next, &timeline, &it, program);
        }

        it.transfers = stats_.Snapshot() - before;
        it.sim_seconds = timeline.Makespan();
        it.transfer_seconds = timeline.PcieBusy();
        it.kernel_seconds = timeline.GpuBusy();
        it.compaction_seconds = timeline.CpuBusy();
        trace.total_sim_seconds += it.sim_seconds;
        trace.iterations.push_back(it);

        // Recycle the active-list allocation into the next iteration.
        actives_scratch_ = std::move(state.actives);
      }

      // Iteration barrier: next iteration's active set is now final — post
      // its blocks to the prefetcher so the IO overlaps the (cheap) stats
      // and task-generation work plus the next round's resident-first
      // tasks.
      PostPrefetchHints(*next);

      std::swap(current, next);
      next->Clear();
    }
    return trace;
  }

  const std::vector<Partition>& partitions() const { return partitions_; }
  const PcieModel& pcie() const { return *pcie_; }
  const GpuComputeModel& gpu_model() const { return *gpu_model_; }
  const TransferStats& stats() const { return stats_; }

 private:
  static double DeltaTrampoline(const void* program, VertexId v) {
    return static_cast<const Program*>(program)->DeltaOf(v);
  }

  IterationState BuildState(const Frontier& frontier, const Program* program,
                            std::vector<VertexId> actives_storage = {}) const {
    DeltaFn delta_fn = nullptr;
    const void* opaque = nullptr;
    if constexpr (Program::kHasDelta) {
      delta_fn = &DeltaTrampoline;
      opaque = program;
    }
    IterationState state = BuildIterationState(
        view_, partitions_, frontier, *zc_access_,
        Program::kNeedsWeights && view_.is_weighted(), delta_fn, opaque,
        std::move(actives_storage));
    if (view_.base_streamed()) {
      // Residency snapshot for the cost model's stream-in term and the
      // resident-first task ordering. Racy by nature (prefetches land
      // concurrently) but only ever pessimistic about cost, never about
      // correctness.
      const EdgeBlockStore& store = *view_.storage();
      for (size_t p = 0; p < partitions_.size(); ++p) {
        if (!state.stats[p].HasWork()) continue;
        state.stats[p].resident = store.RangeResident(
            partitions_[p].first_vertex, partitions_[p].last_vertex - 1);
      }
    }
    return state;
  }

  /// Out-of-core pipelining for one push iteration: reorder the scheduled
  /// tasks so fully resident ones run first (a stable partition — the
  /// contribution-driven priority order is preserved within each half), and
  /// post the non-resident tasks' blocks to the prefetcher, so their IO
  /// streams behind the resident tasks' compute instead of stalling the
  /// first ExecuteTask that touches them.
  void OverlapStreamIn(std::vector<Task>* tasks,
                       const IterationState& state) const {
    if (!view_.base_streamed()) return;
    const EdgeBlockStore& store = *view_.storage();
    const auto task_resident = [&](const Task& task) {
      for (uint32_t p : task.partitions) {
        if (!state.stats[p].resident) return false;
      }
      return true;
    };
    std::stable_partition(tasks->begin(), tasks->end(), task_resident);
    if (!store.prefetch_enabled()) return;
    std::vector<uint32_t> blocks;
    for (const Task& task : *tasks) {
      if (task_resident(task)) continue;
      for (uint32_t p : task.partitions) {
        store.BlocksForRange(partitions_[p].first_vertex,
                             partitions_[p].last_vertex - 1, &blocks);
      }
    }
    store.PostPrefetch(blocks);
  }

  /// Posts the blocks covering `frontier`'s active vertices to the
  /// prefetcher (iteration-barrier hint: the next iteration's read set is
  /// exact, so accuracy-tracked read-ahead can hide the stream-in).
  void PostPrefetchHints(const Frontier& frontier) const {
    if (!view_.base_streamed()) return;
    const EdgeBlockStore& store = *view_.storage();
    if (!store.prefetch_enabled()) return;
    // Iteration barrier: close the previous barrier-to-barrier IO epoch so
    // the cache's measured working set sizes this round's read-ahead cap.
    store.BeginIoEpoch();
    std::vector<uint32_t> blocks;
    const auto words = frontier.Words();
    for (size_t w = 0; w < words.size(); ++w) {
      uint64_t bits = words[w].load(std::memory_order_relaxed);
      while (bits != 0) {
        const VertexId v = static_cast<VertexId>(
            w * Frontier::kBitsPerWord +
            static_cast<uint64_t>(std::countr_zero(bits)));
        const uint32_t b = store.BlockOf(v);
        if (blocks.empty() || blocks.back() != b) blocks.push_back(b);
        bits &= bits - 1;
      }
    }
    store.PostPrefetch(blocks);
  }

  /// One pull-direction iteration: a dense gather over the reverse view
  /// (RunPullKernel), bypassing the partition/task pipeline entirely. The
  /// reverse adjacency is treated as GPU-resident alongside the forward
  /// CSR, so the iteration is kernel-only in simulated time (no transfer
  /// engines run); `frontier_edges` is the push-equivalent m_f for the
  /// trace — nonzero only when the direction decision computed it (every
  /// auto-mode iteration; forced kPull passes 0).
  IterationTrace RunPullIteration(const Frontier& current, Frontier* next,
                                  uint64_t frontier_edges,
                                  uint64_t active_vertices, RunTrace* trace,
                                  Program* program) {
    IterationTrace it;
    it.direction = TraversalDirection::kPull;
    it.active_vertices = active_vertices;
    it.active_edges = frontier_edges;
    it.num_tasks = 1;
    const TransferStatsSnapshot before = stats_.Snapshot();

    const uint64_t edges = RunPullKernel(view_, current, *program, next);
    stats_.AddKernelEdges(edges);

    StreamTimeline timeline(options_.num_streams);
    StreamTask st;
    st.label = "pull";
    st.kernel_seconds =
        gpu_model_->SecondsForEdges(edges) + options_.task_overhead_seconds;
    timeline.Submit(st);

    it.transfers = stats_.Snapshot() - before;
    it.sim_seconds = timeline.Makespan();
    it.kernel_seconds = timeline.GpuBusy();
    trace->total_sim_seconds += it.sim_seconds;
    return it;
  }

  /// Resolves SolverOptions::num_workers to the lane count this run
  /// executes with. 0 = hardware concurrency; always 1 when the solver is
  /// already running on a pool worker (batched / fused serving queries:
  /// the batch is the parallel unit — lanes under every query would
  /// oversubscribe the machine) and for the unified-memory baselines
  /// (their page cache is stateful and access-order dependent).
  int ResolveLaneCount() const {
    int lanes = options_.num_workers;
    if (lanes == 0) {
      lanes = static_cast<int>(std::thread::hardware_concurrency());
      if (lanes <= 0) lanes = 1;
    }
    if (lanes <= 1) return 1;
    if (ThreadPool::InWorkerThread()) return 1;
    if (um_engine_ != nullptr) return 1;
    return static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(lanes), partitions_.size()));
  }

  /// Fixes each lane's partition ownership for the query's lifetime:
  /// contiguous partition ranges balanced by edge mass (greedy toward the
  /// per-lane prefix target, at least one partition per lane). Contiguous
  /// partitions induce contiguous vertex ranges, so vertex -> owning lane
  /// is an upper_bound over the lane start vertices.
  void AssignLanes(int num_lanes,
                   std::vector<std::unique_ptr<LaneState>>* lane_states,
                   std::vector<VertexId>* lane_starts) const {
    lane_states->reserve(num_lanes);
    lane_starts->reserve(num_lanes);
    uint64_t total_edges = 0;
    for (const Partition& part : partitions_) total_edges += part.num_edges();
    const auto num_partitions = static_cast<uint32_t>(partitions_.size());
    uint64_t cum = 0;
    uint32_t p = 0;
    for (int l = 0; l < num_lanes; ++l) {
      auto lane = std::make_unique<LaneState>(view_, num_lanes);
      lane->p_begin = p;
      const uint64_t target =
          total_edges * static_cast<uint64_t>(l + 1) / num_lanes;
      // Leave at least one partition for each remaining lane.
      const uint32_t max_end =
          num_partitions - static_cast<uint32_t>(num_lanes - 1 - l);
      while (p < max_end && (p == lane->p_begin || cum < target)) {
        cum += partitions_[p].num_edges();
        ++p;
      }
      lane->p_end = p;
      lane->v_begin = partitions_[lane->p_begin].first_vertex;
      lane->v_end = partitions_[lane->p_end - 1].last_vertex;
      lane_starts->push_back(lane->v_begin);
      lane_states->push_back(std::move(lane));
    }
  }

  /// One push iteration under parallel lanes. The coordinator builds the
  /// iteration state and evaluates the per-partition cost formulas once
  /// (identical inputs to the sequential path); each lane then generates,
  /// schedules, and executes its owned range's tasks against its
  /// lane-local sink, and the barrier merge publishes the next frontier
  /// owner-only. Simulated time is max-over-lanes of the per-lane stream
  /// makespans — the same per-partition costs, modeled as concurrent
  /// devices.
  IterationTrace RunParallelPushIteration(
      LaneTeam* team, std::vector<std::unique_ptr<LaneState>>* lanes,
      const std::vector<VertexId>& lane_starts, const Frontier& current,
      Frontier* next, RunTrace* trace, Program* program) {
    IterationState state =
        BuildState(current, program, std::move(actives_scratch_));
    std::vector<PartitionCosts> costs;
    if (options_.system == SystemKind::kHyTGraph) {
      costs = cost_model_->EvaluateAll(partitions_, state);
    }

    IterationTrace it;
    it.active_vertices = state.total_active_vertices();
    it.active_edges = state.total_active_edges;
    const TransferStatsSnapshot before = stats_.Snapshot();

    // Execute phase: per-lane task lists over owned partitions only.
    // Task combining and priority scheduling are confined to the lane's
    // range (filter runs reset at lane boundaries) — the per-partition
    // engine choices themselves are identical to the sequential path.
    team->Run([&](int l) {
      LaneState& lane = *(*lanes)[l];
      lane.BeginIteration();
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<Task> tasks =
          GenerateLaneTasks(state, costs, lane.p_begin, lane.p_end);
      SplitOversizedCompactionTasks(&tasks, state);
      PrioritySchedulerOptions pso;
      pso.enabled = options_.enable_contribution_scheduling;
      pso.delta_driven = Program::kHasDelta;
      ScheduleTasks(&tasks, state, pso);
      OverlapStreamIn(&tasks, state);
      StreamTimeline timeline(options_.num_streams);
      lane.partial.num_tasks = static_cast<uint32_t>(tasks.size());
      LaneSink sink(&lane, lane_starts);
      for (const Task& task : tasks) {
        ExecuteTask(task, state, &sink, &timeline, &lane.partial, program);
      }
      lane.sim_seconds = timeline.Makespan();
      lane.transfer_busy = timeline.PcieBusy();
      lane.kernel_busy = timeline.GpuBusy();
      lane.cpu_busy = timeline.CpuBusy();
      lane.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    });

    // Merge phase (the iteration barrier): every lane publishes exactly
    // the vertices it owns into the global next frontier — its own range
    // from its local bitmap plus every peer's outbox addressed to it.
    // Owner-only publication keeps the shared bitmap's words near-disjoint
    // (only range-boundary words are shared), and the degree-carrying
    // Activate keeps the scout count exact for the next direction
    // decision. Activation is idempotent set semantics, so the merged
    // bitmap and scout sum are independent of lane interleaving.
    team->Run([&](int l) {
      LaneState& lane = *(*lanes)[l];
      for (size_t m = 0; m < lanes->size(); ++m) {
        if (static_cast<int>(m) == l) continue;
        for (const VertexId v : (*lanes)[m]->outbox[l]) {
          next->Activate(v, view_.out_degree(v));
        }
      }
      lane.merge_scratch.clear();
      lane.local.CollectRange(lane.v_begin, lane.v_end, &lane.merge_scratch);
      for (const VertexId v : lane.merge_scratch) {
        next->Activate(v, view_.out_degree(v));
      }
    });

    double sim = 0;
    double busy = 0;
    double critical = 0;
    for (const auto& lp : *lanes) {
      const LaneState& lane = *lp;
      it.num_tasks += lane.partial.num_tasks;
      it.partitions_filter += lane.partial.partitions_filter;
      it.partitions_compaction += lane.partial.partitions_compaction;
      it.partitions_zero_copy += lane.partial.partitions_zero_copy;
      it.partitions_um += lane.partial.partitions_um;
      it.partitions_active += lane.partial.partitions_active;
      it.measured_compaction_seconds +=
          lane.partial.measured_compaction_seconds;
      it.um_pages_touched += lane.partial.um_pages_touched;
      sim = std::max(sim, lane.sim_seconds);
      it.transfer_seconds += lane.transfer_busy;
      it.kernel_seconds += lane.kernel_busy;
      it.compaction_seconds += lane.cpu_busy;
      busy += lane.wall_seconds;
      critical = std::max(critical, lane.wall_seconds);
    }
    it.sim_seconds = sim;
    it.transfers = stats_.Snapshot() - before;
    trace->total_sim_seconds += it.sim_seconds;
    trace->lane_busy_seconds += busy;
    trace->lane_critical_seconds += critical;

    actives_scratch_ = std::move(state.actives);
    return it;
  }

  /// One pull iteration under parallel lanes: the coordinator computes the
  /// deterministic iteration floor, then each lane scans its owned
  /// candidate slice. Candidates are own-range by construction, so lanes
  /// write the global next frontier owner-only with the sequential pull
  /// kernel's plain (scout-invalidating) activations — no outboxes needed.
  IterationTrace RunParallelPullIteration(
      LaneTeam* team, std::vector<std::unique_ptr<LaneState>>* lanes,
      const Frontier& current, Frontier* next, uint64_t frontier_edges,
      uint64_t active_vertices, RunTrace* trace, Program* program) {
    IterationTrace it;
    it.direction = TraversalDirection::kPull;
    it.active_vertices = active_vertices;
    it.active_edges = frontier_edges;
    it.num_tasks = static_cast<uint32_t>(lanes->size());
    const TransferStatsSnapshot before = stats_.Snapshot();

    view_.EnsureReverse();
    const auto floor = PullIterationFloor(current, *program);
    team->Run([&](int l) {
      LaneState& lane = *(*lanes)[l];
      lane.BeginIteration();
      const auto t0 = std::chrono::steady_clock::now();
      lane.pull_edges = RunPullKernelRange(view_, current, *program, next,
                                           floor, lane.v_begin, lane.v_end);
      lane.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    });

    uint64_t edges = 0;
    double sim = 0;
    double busy = 0;
    double critical = 0;
    for (const auto& lp : *lanes) {
      edges += lp->pull_edges;
      // One gather stream per lane in simulated time: max-over-lanes of
      // the per-lane kernel model, busy time summed.
      const double lane_kernel = gpu_model_->SecondsForEdges(lp->pull_edges) +
                                 options_.task_overhead_seconds;
      sim = std::max(sim, lane_kernel);
      it.kernel_seconds += lane_kernel;
      busy += lp->wall_seconds;
      critical = std::max(critical, lp->wall_seconds);
    }
    stats_.AddKernelEdges(edges);
    it.sim_seconds = sim;
    it.transfers = stats_.Snapshot() - before;
    trace->total_sim_seconds += it.sim_seconds;
    trace->lane_busy_seconds += busy;
    trace->lane_critical_seconds += critical;
    return it;
  }

  /// Task generation: HyTGraph runs the cost model per partition; every
  /// baseline forces one engine across all active partitions.
  std::vector<Task> GenerateTasks(const IterationState& state) const {
    TaskCombinerOptions tco;
    tco.combine_k = options_.combine_k;
    tco.enabled = options_.enable_task_combining;

    switch (options_.system) {
      case SystemKind::kHyTGraph: {
        const std::vector<PartitionCosts> costs =
            cost_model_->EvaluateAll(partitions_, state);
        return CombineTasks(partitions_, state, costs, tco);
      }
      case SystemKind::kExpFilter:
        return ForcedTasks(state, EngineKind::kFilter,
                           /*single_task=*/false);
      case SystemKind::kSubway:
        return ForcedTasks(state, EngineKind::kCompaction,
                           /*single_task=*/true);
      case SystemKind::kEmogi:
        return ForcedTasks(state, EngineKind::kZeroCopy,
                           /*single_task=*/true);
      case SystemKind::kImpUm:
      case SystemKind::kGrus:
        return ForcedTasks(state, EngineKind::kUnifiedMemory,
                           /*single_task=*/true);
      case SystemKind::kCpu:
        return ForcedTasks(state, EngineKind::kCpu, /*single_task=*/true);
    }
    return {};
  }

  /// Lane-range task generation over partitions [p_begin, p_end). `costs`
  /// is the coordinator's full EvaluateAll result (kHyTGraph only; empty
  /// for forced baselines). Combining/merging is confined to the range —
  /// "single task" baselines build one task per lane.
  std::vector<Task> GenerateLaneTasks(const IterationState& state,
                                      const std::vector<PartitionCosts>& costs,
                                      uint32_t p_begin,
                                      uint32_t p_end) const {
    TaskCombinerOptions tco;
    tco.combine_k = options_.combine_k;
    tco.enabled = options_.enable_task_combining;

    switch (options_.system) {
      case SystemKind::kHyTGraph:
        return CombineTasks(partitions_, state, costs, tco, p_begin, p_end);
      case SystemKind::kExpFilter:
        return ForcedTasks(state, EngineKind::kFilter,
                           /*single_task=*/false, p_begin, p_end);
      case SystemKind::kSubway:
        return ForcedTasks(state, EngineKind::kCompaction,
                           /*single_task=*/true, p_begin, p_end);
      case SystemKind::kEmogi:
        return ForcedTasks(state, EngineKind::kZeroCopy,
                           /*single_task=*/true, p_begin, p_end);
      case SystemKind::kImpUm:
      case SystemKind::kGrus:
        // Unreachable under lanes (ResolveLaneCount forces 1 for UM), but
        // kept total for safety.
        return ForcedTasks(state, EngineKind::kUnifiedMemory,
                           /*single_task=*/true, p_begin, p_end);
      case SystemKind::kCpu:
        return ForcedTasks(state, EngineKind::kCpu, /*single_task=*/true,
                           p_begin, p_end);
    }
    return {};
  }

  /// All active partitions under one forced engine. `single_task` merges
  /// everything into one task; otherwise consecutive partitions group by
  /// combine_k (the streaming behaviour of filter-based frameworks).
  std::vector<Task> ForcedTasks(const IterationState& state, EngineKind kind,
                                bool single_task) const {
    return ForcedTasks(state, kind, single_task, 0,
                       static_cast<uint32_t>(partitions_.size()));
  }

  /// Range-limited ForcedTasks over partitions [p_begin, p_end): the lane
  /// path builds one forced task list per owned range ("single" task means
  /// single per lane there).
  std::vector<Task> ForcedTasks(const IterationState& state, EngineKind kind,
                                bool single_task, uint32_t p_begin,
                                uint32_t p_end) const {
    std::vector<Task> tasks;
    Task* open = nullptr;
    for (uint32_t p = p_begin; p < p_end; ++p) {
      if (!state.stats[p].HasWork()) continue;
      const bool need_new =
          open == nullptr ||
          (!single_task && static_cast<int>(open->partitions.size()) >=
                               options_.combine_k);
      if (need_new) {
        tasks.emplace_back();
        open = &tasks.back();
        open->engine = kind;
      }
      open->partitions.push_back(p);
      open->active_vertices += state.stats[p].active_vertices;
      open->active_edges += state.stats[p].active_edges;
      open->total_edges += partitions_[p].num_edges();
      open->zc_requests += state.stats[p].zc_requests;
    }
    return tasks;
  }

  /// Splits compaction tasks whose compacted edges exceed the device-memory
  /// staging budget into chunks of partitions that fit. Each chunk is
  /// processed (and locally re-rounded) independently; updates crossing
  /// chunks propagate in the next global iteration — exactly Subway's
  /// memory-bounded behaviour.
  void SplitOversizedCompactionTasks(std::vector<Task>* tasks,
                                     const IterationState& state) const {
    const uint64_t budget_edges =
        std::max<uint64_t>(1, staging_budget_bytes_ / bytes_per_edge_);
    std::vector<Task> result;
    result.reserve(tasks->size());
    for (Task& task : *tasks) {
      if (task.engine != EngineKind::kCompaction ||
          task.active_edges <= budget_edges) {
        result.push_back(std::move(task));
        continue;
      }
      Task* chunk = nullptr;
      for (uint32_t p : task.partitions) {
        const PartitionStats& stats = state.stats[p];
        const bool need_new =
            chunk == nullptr ||
            (chunk->active_edges > 0 &&
             chunk->active_edges + stats.active_edges > budget_edges);
        if (need_new) {
          result.emplace_back();
          chunk = &result.back();
          chunk->engine = EngineKind::kCompaction;
          chunk->priority = task.priority;
        }
        chunk->partitions.push_back(p);
        chunk->active_vertices += stats.active_vertices;
        chunk->active_edges += stats.active_edges;
        chunk->total_edges += partitions_[p].num_edges();
        chunk->zc_requests += stats.zc_requests;
      }
    }
    *tasks = std::move(result);
  }

  /// Concatenates the active slices of a task's partitions. Partition ids
  /// ascend and slices are sorted, so the result is globally sorted.
  std::vector<VertexId> GatherActives(const Task& task,
                                      const IterationState& state) const {
    std::vector<VertexId> actives;
    actives.reserve(task.active_vertices);
    for (uint32_t p : task.partitions) {
      const auto slice = state.Slice(p);
      actives.insert(actives.end(), slice.begin(), slice.end());
    }
    return actives;
  }

  /// Extra asynchronous rounds: consume re-activations that landed inside
  /// this task's loaded subgraph. `membership` restricts to vertices whose
  /// edges are actually on the GPU (compaction loads only the original
  /// active set; filter loads whole partitions). `Sink` is the global
  /// Frontier on the sequential path or the LaneSink under lanes — a
  /// task's partitions are always lane-owned, so the collect/deactivate
  /// cycle below stays entirely within the lane-local frontier there.
  template <typename Sink>
  uint64_t RunExtraRounds(const Task& task,
                          const std::vector<VertexId>* membership,
                          Sink* next, Program* program) {
    const int max_rounds = options_.extra_rounds < 0
                               ? options_.max_local_rounds
                               : options_.extra_rounds;
    uint64_t edges = 0;
    for (int round = 0; round < max_rounds; ++round) {
      std::vector<VertexId> pending;
      for (uint32_t p : task.partitions) {
        const Partition& part = partitions_[p];
        std::vector<VertexId> in_range;
        next->CollectRange(part.first_vertex, part.last_vertex, &in_range);
        for (VertexId v : in_range) {
          if (membership == nullptr ||
              std::binary_search(membership->begin(), membership->end(), v)) {
            next->Deactivate(v, view_.out_degree(v));
            pending.push_back(v);
          }
        }
      }
      if (pending.empty()) break;
      edges += RunKernel(view_, pending, *program, next);
    }
    return edges;
  }

  template <typename Sink>
  void ExecuteTask(const Task& task, const IterationState& state,
                   Sink* next, StreamTimeline* timeline,
                   IterationTrace* it, Program* program) {
    const std::vector<VertexId> actives = GatherActives(task, state);
    const auto count = static_cast<uint32_t>(task.partitions.size());
    StreamTask st;
    st.label = EngineKindName(task.engine);
    it->partitions_active += count;

    switch (task.engine) {
      case EngineKind::kFilter: {
        it->partitions_filter += count;
        const uint64_t bytes = task.total_edges * bytes_per_edge_;
        const uint64_t tlps = pcie_->ExplicitCopyTlps(bytes);
        stats_.AddExplicit(bytes, tlps);
        st.transfer_seconds = pcie_->ExplicitCopySeconds(bytes) +
                              options_.task_overhead_seconds;
        uint64_t edges = RunKernel(view_, actives, *program, next);
        if (options_.extra_rounds != 0) {
          // Whole partitions are on the GPU: any vertex in range can be
          // recomputed without further transfer.
          edges += RunExtraRounds(task, /*membership=*/nullptr, next, program);
        }
        stats_.AddKernelEdges(edges);
        st.kernel_seconds = gpu_model_->SecondsForEdges(edges) +
                            options_.task_overhead_seconds;
        break;
      }
      case EngineKind::kCompaction: {
        it->partitions_compaction += count;
        CompactionResult compact = CompactActiveEdges(
            view_, actives, Program::kNeedsWeights && view_.is_weighted());
        it->measured_compaction_seconds += compact.measured_seconds;
        stats_.AddCompactedBytes(compact.bytes_moved);
        st.cpu_seconds = static_cast<double>(compact.bytes_moved) /
                         cpu_model_->compaction_bytes_per_second();

        const uint64_t bytes = compact.sub.TransferBytes();
        const uint64_t tlps = pcie_->ExplicitCopyTlps(bytes);
        stats_.AddExplicit(bytes, tlps);
        st.transfer_seconds = pcie_->ExplicitCopySeconds(bytes) +
                              options_.task_overhead_seconds;

        uint64_t edges = RunKernelOnSubCsr(view_, compact.sub, *program, next);
        if (options_.extra_rounds != 0) {
          // Only the compacted vertices' edges are on the GPU.
          edges += RunExtraRounds(task, &actives, next, program);
        }
        stats_.AddKernelEdges(edges);
        st.kernel_seconds = gpu_model_->SecondsForEdges(edges) +
                            options_.task_overhead_seconds;
        break;
      }
      case EngineKind::kZeroCopy: {
        it->partitions_zero_copy += count;
        const double ratio =
            task.total_edges == 0
                ? 0.0
                : static_cast<double>(task.active_edges) /
                      static_cast<double>(task.total_edges);
        const uint64_t line_bytes =
            task.zc_requests * options_.pcie.max_request_bytes;
        stats_.AddZeroCopy(
            line_bytes, task.zc_requests,
            CeilDiv(task.zc_requests, options_.pcie.requests_per_tlp));
        st.transfer_seconds =
            pcie_->ZeroCopySeconds(task.zc_requests, ratio) +
            options_.task_overhead_seconds;
        // No extra rounds: zero-copy loads nothing, re-access would pay the
        // PCIe cost again (Section VI-A applies to *loaded* subgraphs).
        const uint64_t edges = RunKernel(view_, actives, *program, next);
        stats_.AddKernelEdges(edges);
        st.kernel_seconds = gpu_model_->SecondsForEdges(edges) +
                            options_.task_overhead_seconds;
        st.fused_transfer_kernel = true;
        break;
      }
      case EngineKind::kUnifiedMemory: {
        it->partitions_um += count;
        UnifiedMemoryReport report;
        uint64_t spill_requests = 0;  // Grus: zero-copy fallback
        for (VertexId v : actives) {
          // Logical offsets: UM pages are addressed in the folded layout.
          const uint64_t begin = view_.edge_begin(v) * bytes_per_edge_;
          const uint64_t end = view_.edge_end(v) * bytes_per_edge_;
          if (options_.system == SystemKind::kGrus) {
            if (!um_engine_->TouchIfCacheable(begin, end, &report)) {
              spill_requests += zc_access_->RequestsForVertex(
                  view_, v, Program::kNeedsWeights && view_.is_weighted());
            }
          } else {
            report += um_engine_->Touch(begin, end);
          }
        }
        stats_.AddUnifiedMemory(report.bytes_migrated, report.faults);
        it->um_pages_touched += report.pages_touched;
        double transfer =
            pcie_->UnifiedMemorySeconds(report.faults, report.faults);
        if (spill_requests > 0) {
          const double ratio =
              task.total_edges == 0
                  ? 0.0
                  : static_cast<double>(task.active_edges) /
                        static_cast<double>(task.total_edges);
          stats_.AddZeroCopy(
              spill_requests * options_.pcie.max_request_bytes,
              spill_requests,
              CeilDiv(spill_requests, options_.pcie.requests_per_tlp));
          transfer += pcie_->ZeroCopySeconds(spill_requests, ratio);
        }
        st.transfer_seconds = transfer + options_.task_overhead_seconds;
        const uint64_t edges = RunKernel(view_, actives, *program, next);
        stats_.AddKernelEdges(edges);
        st.kernel_seconds = gpu_model_->SecondsForEdges(edges) +
                            options_.task_overhead_seconds;
        break;
      }
      case EngineKind::kCpu: {
        const uint64_t edges = RunKernel(view_, actives, *program, next);
        stats_.AddKernelEdges(edges);
        st.kernel_seconds = cpu_model_->SecondsForEdges(edges);
        break;
      }
    }
    timeline->Submit(st);
  }

  GraphView view_;
  SolverOptions options_;
  uint64_t bytes_per_edge_ = 4;
  uint64_t staging_budget_bytes_ = 0;
  bool initialized_ = false;
  /// Recycled active-list buffer (one collect per push iteration).
  std::vector<VertexId> actives_scratch_;

  std::vector<Partition> partitions_;
  std::unique_ptr<DeviceMemory> device_memory_;
  std::unique_ptr<PcieModel> pcie_;
  std::unique_ptr<ZeroCopyAccess> zc_access_;
  std::unique_ptr<GpuComputeModel> gpu_model_;
  std::unique_ptr<CpuComputeModel> cpu_model_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<UnifiedMemoryEngine> um_engine_;
  TransferStats stats_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_SOLVER_H_
