// Scheduling units. A Task is a set of partitions bound to the transfer
// engine the cost model chose for them, produced by the task combiner and
// consumed by the asynchronous scheduler.

#ifndef HYTGRAPH_CORE_TASK_H_
#define HYTGRAPH_CORE_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hytgraph {

/// The transfer engines of Table III. kCpu is the no-transfer CPU baseline.
enum class EngineKind {
  kFilter = 0,         // ExpTM-filter
  kCompaction = 1,     // ExpTM-compaction
  kZeroCopy = 2,       // ImpTM-zero-copy
  kUnifiedMemory = 3,  // ImpTM-unified-memory
  kCpu = 4,
};

/// Short display name ("E-F", "E-C", "I-ZC", "I-UM", "CPU"), Fig. 3 style.
const char* EngineKindName(EngineKind kind);

struct Task {
  EngineKind engine = EngineKind::kFilter;
  /// Partition ids covered by this task (ascending).
  std::vector<uint32_t> partitions;
  /// Scheduling priority; larger runs earlier (contribution-driven).
  double priority = 0;

  /// Aggregates for convenience, filled by the combiner.
  uint64_t active_vertices = 0;
  uint64_t active_edges = 0;
  uint64_t total_edges = 0;    // all edges of covered partitions
  uint64_t zc_requests = 0;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_TASK_H_
