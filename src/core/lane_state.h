// Per-lane execution state for the solver's parallel partition execution
// (SolverOptions::num_workers > 1). Each worker lane owns a contiguous
// partition range for the query's lifetime and, per iteration, runs its
// partitions' tasks against a lane-local next-frontier through a LaneSink:
// activations of lane-owned vertices land only in the lane-local bitmap,
// activations of foreign vertices are additionally appended to a
// single-producer outbox addressed to the owning lane. At the iteration
// barrier every lane merges exactly the vertices it owns into the global
// next frontier — its own range from its local bitmap plus every peer's
// outbox addressed to it — so the shared bitmap is written owner-only
// (near-disjoint words) and never contended on the kernel hot path.

#ifndef HYTGRAPH_CORE_LANE_STATE_H_
#define HYTGRAPH_CORE_LANE_STATE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/trace.h"
#include "engine/frontier.h"
#include "graph/graph_view.h"

namespace hytgraph {

struct LaneState {
  LaneState(const GraphView& view, int num_lanes)
      : local(view), outbox(num_lanes) {}

  /// Owned ranges, fixed for the query's lifetime. Partitions are
  /// contiguous, so the partition range induces the vertex range.
  uint32_t p_begin = 0;
  uint32_t p_end = 0;
  VertexId v_begin = 0;
  VertexId v_end = 0;

  /// Lane-local next frontier. Covers the whole vertex space (it doubles
  /// as the dedup set for foreign activations) but only this lane writes
  /// it, so no atomics are contended.
  Frontier local;

  /// outbox[peer]: foreign activations owned by `peer`, deduped by the
  /// local bitmap (a vertex is appended only on its first activation).
  std::vector<std::vector<VertexId>> outbox;

  /// Per-iteration outputs, read by the coordinator at the barrier.
  IterationTrace partial;
  double sim_seconds = 0;        // lane timeline makespan
  double transfer_busy = 0;
  double kernel_busy = 0;
  double cpu_busy = 0;
  double wall_seconds = 0;       // measured execute-phase wall time
  uint64_t pull_edges = 0;

  /// Scratch recycled across iterations.
  std::vector<VertexId> merge_scratch;

  void BeginIteration() {
    local.Clear();
    for (auto& box : outbox) box.clear();
    partial = IterationTrace{};
    sim_seconds = transfer_busy = kernel_busy = cpu_busy = wall_seconds = 0;
    pull_edges = 0;
  }
};

/// The activation sink lane kernels write through (the `Sink` parameter of
/// RunKernel / RunKernelOnSubCsr). Also forwards the Deactivate /
/// CollectRange surface RunExtraRounds consumes — extra rounds only touch
/// vertices inside the lane's own partitions, so they never interact with
/// the outboxes.
class LaneSink {
 public:
  LaneSink(LaneState* lane, std::span<const VertexId> lane_starts)
      : lane_(lane), lane_starts_(lane_starts) {}

  bool Activate(VertexId v, EdgeId out_degree) {
    if (!lane_->local.Activate(v, out_degree)) return false;
    Route(v);
    return true;
  }

  bool Activate(VertexId v) {
    if (!lane_->local.Activate(v)) return false;
    Route(v);
    return true;
  }

  void Deactivate(VertexId v, EdgeId out_degree) {
    lane_->local.Deactivate(v, out_degree);
  }

  void CollectRange(VertexId first, VertexId last,
                    std::vector<VertexId>* out) const {
    lane_->local.CollectRange(first, last, out);
  }

 private:
  void Route(VertexId v) {
    if (v >= lane_->v_begin && v < lane_->v_end) return;
    const auto owner = static_cast<size_t>(
        std::upper_bound(lane_starts_.begin(), lane_starts_.end(), v) -
        lane_starts_.begin() - 1);
    lane_->outbox[owner].push_back(v);
  }

  LaneState* lane_;
  std::span<const VertexId> lane_starts_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_CORE_LANE_STATE_H_
