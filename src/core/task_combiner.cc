#include "core/task_combiner.h"

namespace hytgraph {

namespace {

void AccumulateInto(Task* task, uint32_t partition_id,
                    const std::vector<Partition>& partitions,
                    const IterationState& state) {
  task->partitions.push_back(partition_id);
  const PartitionStats& stats = state.stats[partition_id];
  task->active_vertices += stats.active_vertices;
  task->active_edges += stats.active_edges;
  task->total_edges += partitions[partition_id].num_edges();
  task->zc_requests += stats.zc_requests;
}

}  // namespace

std::vector<Task> CombineTasks(const std::vector<Partition>& partitions,
                               const IterationState& state,
                               const std::vector<PartitionCosts>& costs,
                               const TaskCombinerOptions& options) {
  return CombineTasks(partitions, state, costs, options, 0,
                      static_cast<uint32_t>(partitions.size()));
}

std::vector<Task> CombineTasks(const std::vector<Partition>& partitions,
                               const IterationState& state,
                               const std::vector<PartitionCosts>& costs,
                               const TaskCombinerOptions& options,
                               uint32_t p_begin, uint32_t p_end) {
  std::vector<Task> tasks;
  if (!options.enabled) {
    // Ablation path: one task per active partition, no merging.
    for (uint32_t p = p_begin; p < p_end; ++p) {
      if (!state.stats[p].HasWork()) continue;
      Task task;
      task.engine = costs[p].choice;
      AccumulateInto(&task, p, partitions, state);
      tasks.push_back(std::move(task));
    }
    return tasks;
  }

  Task compaction_task;   // Vc: all ExpTM-C partitions, pre-combined
  compaction_task.engine = EngineKind::kCompaction;
  Task zero_copy_task;    // Vz: all ImpTM-ZC partitions, one kernel
  zero_copy_task.engine = EngineKind::kZeroCopy;

  // Vf: runs of consecutive filter partitions, each capped at combine_k
  // (Algorithm 1 lines 15-24: a non-filter partition resets the run).
  Task filter_task;
  filter_task.engine = EngineKind::kFilter;
  auto flush_filter = [&] {
    if (!filter_task.partitions.empty()) {
      tasks.push_back(std::move(filter_task));
      filter_task = Task{};
      filter_task.engine = EngineKind::kFilter;
    }
  };

  for (uint32_t p = p_begin; p < p_end; ++p) {
    if (!state.stats[p].HasWork()) continue;
    switch (costs[p].choice) {
      case EngineKind::kFilter:
        if (static_cast<int>(filter_task.partitions.size()) >=
            options.combine_k) {
          flush_filter();
        }
        AccumulateInto(&filter_task, p, partitions, state);
        break;
      case EngineKind::kCompaction:
        flush_filter();
        AccumulateInto(&compaction_task, p, partitions, state);
        break;
      case EngineKind::kZeroCopy:
        flush_filter();
        AccumulateInto(&zero_copy_task, p, partitions, state);
        break;
      default:
        flush_filter();
        break;
    }
  }
  flush_filter();

  if (!zero_copy_task.partitions.empty()) {
    tasks.push_back(std::move(zero_copy_task));
  }
  if (!compaction_task.partitions.empty()) {
    tasks.push_back(std::move(compaction_task));
  }
  return tasks;
}

}  // namespace hytgraph
