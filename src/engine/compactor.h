// The CPU-based active-edge compaction engine (Section VI-C, "a simple yet
// efficient parallel edge compaction engine by referring to Subway").
// Gathers the neighbour runs (and weights) of the active vertices into a
// dense sub-CSR in host memory so they can be shipped with one explicit
// copy. This does real memory movement — its wall-clock cost is measured and
// reported alongside the modelled cost, reproducing Subway's "compaction can
// outweigh the transfer saving" effect.

#ifndef HYTGRAPH_ENGINE_COMPACTOR_H_
#define HYTGRAPH_ENGINE_COMPACTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/types.h"
#include "util/status.h"

namespace hytgraph {

/// A compacted subgraph: `vertices[i]`'s neighbours occupy
/// [row_offsets[i], row_offsets[i+1]) of `column_index` / `weights`.
struct SubCsr {
  std::vector<VertexId> vertices;
  std::vector<EdgeId> row_offsets;     // size vertices.size() + 1
  std::vector<VertexId> column_index;
  std::vector<Weight> weights;         // empty when unweighted

  uint64_t num_edges() const { return column_index.size(); }

  /// Bytes that must cross PCIe: compacted edges (+weights) plus the new
  /// vertex index (the paper's |A|*d2 term in formula (2)).
  uint64_t TransferBytes() const {
    return column_index.size() * kBytesPerNeighbor +
           weights.size() * sizeof(Weight) +
           vertices.size() * kBytesPerIndexEntry;
  }
};

struct CompactionResult {
  SubCsr sub;
  /// Wall-clock seconds the compaction took on the host (measured).
  double measured_seconds = 0;
  /// Bytes read+written by the compactor on host memory.
  uint64_t bytes_moved = 0;
};

/// Compacts the out-edges of `actives` (sorted vertex ids) from `view`.
/// Vertices with no pending delta keep the dense memcpy gather; delta
/// vertices gather through the merged overlay iteration, so the shipped
/// sub-CSR reflects the mutated graph without a snapshot fold.
/// `include_weights` copies the weight runs too. Runs on the default pool.
CompactionResult CompactActiveEdges(const GraphView& view,
                                    std::span<const VertexId> actives,
                                    bool include_weights);

/// CsrGraph convenience overload (static callers, tests).
inline CompactionResult CompactActiveEdges(const CsrGraph& graph,
                                           std::span<const VertexId> actives,
                                           bool include_weights) {
  return CompactActiveEdges(GraphView::Wrap(graph), actives, include_weights);
}

}  // namespace hytgraph

#endif  // HYTGRAPH_ENGINE_COMPACTOR_H_
