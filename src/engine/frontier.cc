#include "engine/frontier.h"

namespace hytgraph {

std::vector<VertexId> Frontier::Collect() const {
  std::vector<VertexId> out;
  bitmap_.CollectSetBits(0, bitmap_.size(), &out);
  return out;
}

void Frontier::CollectInto(std::vector<VertexId>* out) const {
  out->clear();
  bitmap_.CollectSetBits(0, bitmap_.size(), out);
}

void Frontier::CollectRange(VertexId begin, VertexId end,
                            std::vector<VertexId>* out) const {
  bitmap_.CollectSetBits(begin, end, out);
}

std::vector<VertexId> Frontier::DrainRange(VertexId begin, VertexId end) {
  std::vector<VertexId> out;
  bitmap_.CollectSetBits(begin, end, &out);
  for (VertexId v : out) Deactivate(v);
  return out;
}

}  // namespace hytgraph
