// Active-vertex frontier, bitmap-directed (Section VI-C: "bitmap-directed
// frontier optimization to reduce the atomic conflict of active vertex
// maintenance"). The solver keeps two frontiers (current / next) and swaps
// them between iterations; engines collect sorted active lists from the
// bitmap.

#ifndef HYTGRAPH_ENGINE_FRONTIER_H_
#define HYTGRAPH_ENGINE_FRONTIER_H_

#include <cstdint>
#include <vector>

#include "graph/graph_view.h"
#include "graph/types.h"
#include "util/atomic_bitmap.h"

namespace hytgraph {

class Frontier {
 public:
  explicit Frontier(VertexId num_vertices) : bitmap_(num_vertices) {}

  /// Sized for a live view (the vertex universe is overlay-invariant, so
  /// this is the base vertex count).
  explicit Frontier(const GraphView& view) : bitmap_(view.num_vertices()) {}

  /// Thread-safe activation; returns true if v was newly activated.
  bool Activate(VertexId v) { return bitmap_.TestAndSet(v); }

  /// Thread-safe deactivation (used when a vertex's pending update is
  /// consumed by an extra asynchronous round).
  void Deactivate(VertexId v) { bitmap_.Clear(v); }

  bool IsActive(VertexId v) const { return bitmap_.Test(v); }

  uint64_t CountActive() const { return bitmap_.Count(); }
  bool Empty() const { return CountActive() == 0; }

  VertexId num_vertices() const {
    return static_cast<VertexId>(bitmap_.size());
  }

  /// All active vertices, ascending.
  std::vector<VertexId> Collect() const;

  /// Active vertices within [begin, end), ascending, appended to out.
  void CollectRange(VertexId begin, VertexId end,
                    std::vector<VertexId>* out) const;

  /// Collects active vertices in [begin, end) AND clears their bits — the
  /// primitive behind asynchronous extra rounds (take the pending set,
  /// consume it).
  std::vector<VertexId> DrainRange(VertexId begin, VertexId end);

  void Clear() { bitmap_.ClearAll(); }

 private:
  AtomicBitmap bitmap_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_ENGINE_FRONTIER_H_
