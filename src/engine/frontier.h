// Active-vertex frontier, bitmap-directed (Section VI-C: "bitmap-directed
// frontier optimization to reduce the atomic conflict of active vertex
// maintenance"). The solver keeps two frontiers (current / next) and swaps
// them between iterations; push engines collect sorted active lists from
// the bitmap, pull engines scan the bitmap words directly (no list
// materialization).
//
// The active count is maintained incrementally on Activate/Deactivate, so
// CountActive()/Empty() are O(1) instead of an O(V/64) popcount per call —
// the per-iteration direction decision and the convergence check read it
// every iteration. Cost: one extra relaxed fetch_add on a shared counter
// per *newly activated* vertex (re-activations are filtered by the bitmap's
// test-before-RMW). If the counter line ever shows up in kernel profiles,
// per-shard counters merged at kernel end are the next step; the dedicated
// line has not been measurable next to the per-edge relaxation work so far.
//
// The frontier also tracks the *scout count* (Beamer's term): the sum of
// view-adjusted out-degrees of the active vertices — the m_f the auto
// push->pull direction decision compares against |E|/alpha. Producers that
// know the activated vertex's out-degree (the push kernels) maintain it
// incrementally via Activate(v, degree); producers that do not (program
// InitFrontier hooks, the pull kernel's local activation) use the plain
// overloads, which mark the scout count invalid — the solver then falls
// back to the O(n_f) FrontierActiveEdges bitmap scan for that one decision
// instead of trusting a stale sum. Steady-state push iterations therefore
// pay no per-iteration scan at all.

#ifndef HYTGRAPH_ENGINE_FRONTIER_H_
#define HYTGRAPH_ENGINE_FRONTIER_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "graph/types.h"
#include "util/atomic_bitmap.h"

namespace hytgraph {

class Frontier {
 public:
  explicit Frontier(VertexId num_vertices) : bitmap_(num_vertices) {}

  /// Sized for a live view (the vertex universe is overlay-invariant, so
  /// this is the base vertex count).
  explicit Frontier(const GraphView& view) : bitmap_(view.num_vertices()) {}

  /// Thread-safe activation; returns true if v was newly activated. The
  /// caller does not supply v's out-degree, so the scout count goes
  /// invalid (the next direction decision rescans the bitmap).
  bool Activate(VertexId v) {
    if (!bitmap_.TestAndSet(v)) return false;
    scout_valid_.store(false, std::memory_order_relaxed);
    active_count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Thread-safe activation that maintains the scout count: `out_degree`
  /// must be v's out-degree in the view this frontier spans (the same
  /// degrees FrontierActiveEdges would sum). Returns true if v was newly
  /// activated.
  bool Activate(VertexId v, EdgeId out_degree) {
    if (!bitmap_.TestAndSet(v)) return false;
    active_count_.fetch_add(1, std::memory_order_relaxed);
    scout_count_.fetch_add(out_degree, std::memory_order_relaxed);
    return true;
  }

  /// Thread-safe deactivation (used when a vertex's pending update is
  /// consumed by an extra asynchronous round). Invalidates the scout count;
  /// use the degree-carrying overload to keep it exact.
  void Deactivate(VertexId v) {
    if (bitmap_.TestAndClear(v)) {
      scout_valid_.store(false, std::memory_order_relaxed);
      active_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Scout-maintaining deactivation; `out_degree` as in Activate.
  void Deactivate(VertexId v, EdgeId out_degree) {
    if (bitmap_.TestAndClear(v)) {
      active_count_.fetch_sub(1, std::memory_order_relaxed);
      scout_count_.fetch_sub(out_degree, std::memory_order_relaxed);
    }
  }

  bool IsActive(VertexId v) const { return bitmap_.Test(v); }

  /// O(1): incrementally maintained, not a bitmap rescan.
  uint64_t CountActive() const {
    return active_count_.load(std::memory_order_relaxed);
  }
  bool Empty() const { return CountActive() == 0; }

  /// True while every activation/deactivation since the last Clear carried
  /// its out-degree — i.e. ScoutCount() equals the FrontierActiveEdges
  /// bitmap scan exactly.
  bool ScoutValid() const {
    return scout_valid_.load(std::memory_order_relaxed);
  }

  /// Sum of active vertices' out-degrees (Beamer's scout_count).
  /// Meaningful only when ScoutValid().
  uint64_t ScoutCount() const {
    return scout_count_.load(std::memory_order_relaxed);
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(bitmap_.size());
  }

  /// All active vertices, ascending.
  std::vector<VertexId> Collect() const;

  /// All active vertices, ascending, into a caller-owned buffer (cleared
  /// first). Reusing one buffer across iterations avoids the per-iteration
  /// active-list reallocation.
  void CollectInto(std::vector<VertexId>* out) const;

  /// Active vertices within [begin, end), ascending, appended to out.
  void CollectRange(VertexId begin, VertexId end,
                    std::vector<VertexId>* out) const;

  /// Collects active vertices in [begin, end) AND clears their bits — the
  /// primitive behind asynchronous extra rounds (take the pending set,
  /// consume it).
  std::vector<VertexId> DrainRange(VertexId begin, VertexId end);

  void Clear() {
    bitmap_.ClearAll();
    active_count_.store(0, std::memory_order_relaxed);
    scout_count_.store(0, std::memory_order_relaxed);
    scout_valid_.store(true, std::memory_order_relaxed);
  }

  /// The bitmap words, for dense iteration (pull kernels test membership
  /// and scan candidates without an active-list materialization). Bit v of
  /// the frontier lives at Words()[v / kBitsPerWord].
  std::span<const std::atomic<uint64_t>> Words() const {
    return bitmap_.words();
  }
  static constexpr uint64_t kBitsPerWord = AtomicBitmap::kBitsPerWord;

 private:
  AtomicBitmap bitmap_;
  std::atomic<uint64_t> active_count_{0};
  std::atomic<uint64_t> scout_count_{0};
  std::atomic<bool> scout_valid_{true};
};

}  // namespace hytgraph

#endif  // HYTGRAPH_ENGINE_FRONTIER_H_
