#include "engine/partition_state.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "util/thread_pool.h"

namespace hytgraph {

IterationState BuildIterationState(const GraphView& view,
                                   const std::vector<Partition>& partitions,
                                   const Frontier& frontier,
                                   const ZeroCopyAccess& zc_access,
                                   bool include_weights, DeltaFn delta_fn,
                                   const void* program,
                                   std::vector<VertexId> actives_storage) {
  IterationState state;
  state.actives = std::move(actives_storage);
  frontier.CollectInto(&state.actives);
  const size_t num_partitions = partitions.size();
  state.slice_offsets.assign(num_partitions + 1, 0);
  state.stats.assign(num_partitions, PartitionStats{});

  // Partition boundaries in the sorted active list via binary search.
  for (size_t p = 0; p < num_partitions; ++p) {
    const auto it =
        std::lower_bound(state.actives.begin(), state.actives.end(),
                         partitions[p].first_vertex);
    state.slice_offsets[p] =
        static_cast<size_t>(it - state.actives.begin());
  }
  state.slice_offsets[num_partitions] = state.actives.size();

  // Per-partition stats in parallel (partitions are independent).
  ThreadPool::Default()->ParallelFor(
      num_partitions,
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        for (uint64_t p = begin; p < end; ++p) {
          PartitionStats& stats = state.stats[p];
          const auto slice = state.Slice(static_cast<uint32_t>(p));
          stats.active_vertices = slice.size();
          for (VertexId v : slice) {
            stats.active_edges += view.out_degree(v);
            stats.zc_requests +=
                zc_access.RequestsForVertex(view, v, include_weights);
            if (delta_fn != nullptr) {
              stats.delta_sum += delta_fn(program, v);
            }
          }
        }
      },
      /*min_grain=*/1);

  for (const PartitionStats& stats : state.stats) {
    state.total_active_edges += stats.active_edges;
  }
  return state;
}

uint64_t FrontierActiveEdges(const GraphView& view, const Frontier& frontier) {
  const auto words = frontier.Words();
  std::atomic<uint64_t> total{0};
  ThreadPool::Default()->ParallelFor(
      words.size(),
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        uint64_t local = 0;
        for (uint64_t w = begin; w < end; ++w) {
          uint64_t bits = words[w].load(std::memory_order_relaxed);
          while (bits != 0) {
            const auto v = static_cast<VertexId>(
                w * Frontier::kBitsPerWord +
                static_cast<uint64_t>(std::countr_zero(bits)));
            local += view.out_degree(v);
            bits &= bits - 1;
          }
        }
        total.fetch_add(local, std::memory_order_relaxed);
      },
      /*min_grain=*/256);
  return total.load();
}

}  // namespace hytgraph
