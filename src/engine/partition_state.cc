#include "engine/partition_state.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace hytgraph {

IterationState BuildIterationState(const GraphView& view,
                                   const std::vector<Partition>& partitions,
                                   const Frontier& frontier,
                                   const ZeroCopyAccess& zc_access,
                                   bool include_weights, DeltaFn delta_fn,
                                   const void* program) {
  IterationState state;
  state.actives = frontier.Collect();
  const size_t num_partitions = partitions.size();
  state.slice_offsets.assign(num_partitions + 1, 0);
  state.stats.assign(num_partitions, PartitionStats{});

  // Partition boundaries in the sorted active list via binary search.
  for (size_t p = 0; p < num_partitions; ++p) {
    const auto it =
        std::lower_bound(state.actives.begin(), state.actives.end(),
                         partitions[p].first_vertex);
    state.slice_offsets[p] =
        static_cast<size_t>(it - state.actives.begin());
  }
  state.slice_offsets[num_partitions] = state.actives.size();

  // Per-partition stats in parallel (partitions are independent).
  ThreadPool::Default()->ParallelFor(
      num_partitions,
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        for (uint64_t p = begin; p < end; ++p) {
          PartitionStats& stats = state.stats[p];
          const auto slice = state.Slice(static_cast<uint32_t>(p));
          stats.active_vertices = slice.size();
          for (VertexId v : slice) {
            stats.active_edges += view.out_degree(v);
            stats.zc_requests +=
                zc_access.RequestsForVertex(view, v, include_weights);
            if (delta_fn != nullptr) {
              stats.delta_sum += delta_fn(program, v);
            }
          }
        }
      },
      /*min_grain=*/1);

  for (const PartitionStats& stats : state.stats) {
    state.total_active_edges += stats.active_edges;
  }
  return state;
}

}  // namespace hytgraph
