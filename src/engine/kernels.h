// Host-executed "GPU kernels": push-mode edge relaxation over an active
// vertex set, plus a pull-mode gather over the reverse view, parallelized
// on the thread pool. The vertex program supplies the per-vertex and
// per-edge behaviour; the kernel supplies iteration order, parallelism, and
// frontier maintenance. Results are exact — only the *time* of these
// kernels is taken from the compute model.
//
// Edge expansion runs on a GraphView: vertices with no pending delta take
// the dense base-CSR span path (identical code to the static engine);
// delta vertices merge tombstone-filtered base edges with overlay inserts
// on the fly. A query therefore never waits for a snapshot fold — the
// per-vertex overlay lookup is the price, measured by bench_view_overhead.
//
// Program concept (see algorithms/programs.h for implementations):
//   struct P {
//     using VertexContext = ...;       // per-source state for one visit
//     bool BeginVertex(VertexId u, VertexContext* ctx);   // false: skip u
//     bool ProcessEdge(const VertexContext& ctx, VertexId u, VertexId v,
//                      Weight w);      // true: v's value changed, activate
//   };

#ifndef HYTGRAPH_ENGINE_KERNELS_H_
#define HYTGRAPH_ENGINE_KERNELS_H_

#include <atomic>
#include <bit>
#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/compactor.h"
#include "engine/frontier.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "util/thread_pool.h"

namespace hytgraph {

/// A program the pull kernel can run: the value-selection family, which
/// exposes a per-vertex potential (the best value an active vertex could
/// write this iteration) and a settled test against the frontier-wide
/// floor. Delta-accumulation programs (PR/PHP) are excluded structurally:
/// their BeginVertex consumes the pending delta, so calling it once per
/// in-edge (as pull does) would double-count mass.
template <typename P>
concept PullCapableProgram =
    !P::kHasDelta && requires(const P& p, VertexId v) {
      typename P::PullBound;
      { P::WorstBound() } -> std::same_as<typename P::PullBound>;
      {
        P::BetterBound(P::WorstBound(), P::WorstBound())
      } -> std::same_as<typename P::PullBound>;
      { p.PullPotential(v) } -> std::same_as<typename P::PullBound>;
      { p.SettledAt(v, P::WorstBound()) } -> std::convertible_to<bool>;
    };

/// Relaxes all out-edges of every vertex in `actives` against `view`,
/// activating changed targets in `next`. Returns the number of edges
/// processed (the kernel-time unit).
///
/// Activations carry the target's view-adjusted out-degree, so `next`'s
/// scout count (activated out-edges, Beamer's m_f) stays exact — the auto
/// direction decision reads it in O(1) instead of rescanning the bitmap.
/// The degree lookup runs once per *newly activated* vertex (the bitmap
/// filters re-activations), not per edge.
///
/// `Sink` is anything with Frontier's Activate(v) / Activate(v, degree)
/// surface: the global Frontier on the sequential path, a lane-local sink
/// (core/lane_state.h) under parallel partition execution.
template <typename Program, typename Sink = Frontier>
uint64_t RunKernel(const GraphView& view, std::span<const VertexId> actives,
                   Program& program, Sink* next) {
  if (actives.empty()) return 0;
  std::atomic<uint64_t> edges_processed{0};
  ThreadPool::Default()->ParallelFor(
      actives.size(),
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        uint64_t local_edges = 0;
        // One lease per shard: active lists are sorted ascending, so an
        // out-of-core base pays one cache acquire per block, not per vertex.
        BlockRef lease;
        for (uint64_t i = begin; i < end; ++i) {
          const VertexId u = actives[i];
          typename Program::VertexContext ctx;
          if (!program.BeginVertex(u, &ctx)) continue;
          if (view.HasDelta(u)) {
            // Merged adjacency: surviving base edges, then overlay inserts.
            view.ForEachNeighborLeased(u, &lease, [&](VertexId v, Weight w) {
              ++local_edges;
              if (program.ProcessEdge(ctx, u, v, w)) {
                next->Activate(v, view.out_degree(v));
              }
            });
            continue;
          }
          const AdjacencyRun run = view.BaseRun(u, &lease);
          const std::span<const VertexId> nbrs = run.targets;
          const std::span<const Weight> wts = run.weights;
          local_edges += nbrs.size();
          // Weightedness is a graph property, not a per-edge one: branch
          // once per vertex, not once per edge.
          if (wts.empty()) {
            for (const VertexId v : nbrs) {
              if (program.ProcessEdge(ctx, u, v, Weight{1})) {
                next->Activate(v, view.out_degree(v));
              }
            }
          } else {
            for (size_t e = 0; e < nbrs.size(); ++e) {
              if (program.ProcessEdge(ctx, u, nbrs[e], wts[e])) {
                next->Activate(nbrs[e], view.out_degree(nbrs[e]));
              }
            }
          }
        }
        edges_processed.fetch_add(local_edges, std::memory_order_relaxed);
      },
      /*min_grain=*/64);
  return edges_processed.load();
}

/// CsrGraph convenience overload (static callers, tests): a transparent
/// non-owning view over `graph`.
template <typename Program>
uint64_t RunKernel(const CsrGraph& graph, std::span<const VertexId> actives,
                   Program& program, Frontier* next) {
  return RunKernel(GraphView::Wrap(graph), actives, program, next);
}

/// Pull-mode relaxation: for every candidate vertex v (dense scan over the
/// whole vertex space — no active-list materialization), gather from the
/// in-neighbours that are in `current`, applying the same ProcessEdge
/// relaxations push would. The edge set relaxed is identical to push's
/// (all (u, v) with u active), so the converged fixpoint values are
/// identical; per-iteration frontiers can drift slightly — pull reads
/// BeginVertex(u) per in-edge where push snapshots it once per active
/// vertex, so mid-iteration improvements may propagate one iteration
/// earlier or later than under push (monotonicity makes either schedule
/// converge to the same values). The wins are structural:
///
///  * next-frontier maintenance is one local Activate per *changed
///    candidate* instead of one atomic per improving edge (the dense-
///    iteration contention the bitmap-directed frontier tries to contain);
///  * a candidate already at the iteration floor — the best potential any
///    frontier vertex holds, a conservative bound on every offer — skips
///    its scan entirely, and a candidate that reaches the floor mid-scan
///    early-exits (classic direction-optimizing payoff: one parent found,
///    stop).
///
/// Requires the view's reverse side; builds it on first use (O(E) once per
/// layout version — the Engine seeds the transpose across epochs).
/// Returns in-edges scanned (including frontier-membership misses), the
/// honest work unit pull is judged by.
template <typename Program>
  requires PullCapableProgram<Program>
typename Program::PullBound PullIterationFloor(const Frontier& current,
                                               Program& program) {
  using Bound = typename Program::PullBound;
  // Iteration floor: reduce the per-vertex potentials over the frontier
  // bitmap (per-shard partials, combined in shard order — deterministic).
  const auto words = current.Words();
  std::vector<Bound> shard_bounds(
      static_cast<size_t>(ThreadPool::Default()->num_threads()) + 1,
      Program::WorstBound());
  ThreadPool::Default()->ParallelFor(
      words.size(),
      [&](int shard, uint64_t begin, uint64_t end) {
        Bound local = Program::WorstBound();
        for (uint64_t w = begin; w < end; ++w) {
          uint64_t bits = words[w].load(std::memory_order_relaxed);
          while (bits != 0) {
            const VertexId u = static_cast<VertexId>(
                w * Frontier::kBitsPerWord +
                static_cast<uint64_t>(std::countr_zero(bits)));
            local = Program::BetterBound(local, program.PullPotential(u));
            bits &= bits - 1;
          }
        }
        shard_bounds[shard] = Program::BetterBound(shard_bounds[shard], local);
      },
      /*min_grain=*/256);
  Bound floor = Program::WorstBound();
  for (const Bound b : shard_bounds) floor = Program::BetterBound(floor, b);
  return floor;
}

/// Serial pull gather over the candidate range [v_begin, v_end) against a
/// precomputed iteration floor. The parallel-lane pull path hands each lane
/// a disjoint candidate slice of this scan; RunPullKernel composes it with
/// pool sharding for the sequential path. Activations into `next` are plain
/// Activate(v) (scout-invalidating — pull iterations rebuild m_f by scan).
template <typename Program>
  requires PullCapableProgram<Program>
uint64_t RunPullKernelRange(const GraphView& view, const Frontier& current,
                            Program& program, Frontier* next,
                            typename Program::PullBound floor,
                            VertexId v_begin, VertexId v_end) {
  uint64_t local_edges = 0;
  // One lease for the whole slice: the dense ascending scan re-pins the
  // transpose block only on boundary crossings when it streams.
  BlockRef lease;
  for (VertexId v = v_begin; v < v_end; ++v) {
    if (program.SettledAt(v, floor)) continue;
    bool changed = false;
    view.ForEachInNeighborWhileLeased(v, &lease, [&](VertexId u, Weight w) {
      ++local_edges;
      if (!current.IsActive(u)) return true;
      typename Program::VertexContext ctx;
      if (!program.BeginVertex(u, &ctx)) return true;
      if (program.ProcessEdge(ctx, u, v, w)) {
        changed = true;
        // Settled at the floor: no remaining in-neighbour can offer
        // better — stop the scan.
        if (program.SettledAt(v, floor)) return false;
      }
      return true;
    });
    if (changed) next->Activate(v);
  }
  return local_edges;
}

template <typename Program>
  requires PullCapableProgram<Program>
uint64_t RunPullKernel(const GraphView& view, const Frontier& current,
                       Program& program, Frontier* next) {
  const VertexId n = view.num_vertices();
  if (n == 0) return 0;
  view.EnsureReverse();

  const auto floor = PullIterationFloor(current, program);

  std::atomic<uint64_t> edges_processed{0};
  ThreadPool::Default()->ParallelFor(
      n,
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        edges_processed.fetch_add(
            RunPullKernelRange(view, current, program, next, floor,
                               static_cast<VertexId>(begin),
                               static_cast<VertexId>(end)),
            std::memory_order_relaxed);
      },
      /*min_grain=*/256);
  return edges_processed.load();
}

/// Same as RunKernel but over a compacted subgraph (Subway-style GPU-side
/// processing of the shipped sub-CSR). Identical relaxation semantics.
/// `view` is the graph the sub-CSR was compacted from — activations carry
/// its degrees so the scout count stays exact (targets can lie outside the
/// compacted vertex set, so the sub-CSR's own offsets can't supply them).
template <typename Program, typename Sink = Frontier>
uint64_t RunKernelOnSubCsr(const GraphView& view, const SubCsr& sub,
                           Program& program, Sink* next) {
  if (sub.vertices.empty()) return 0;
  std::atomic<uint64_t> edges_processed{0};
  ThreadPool::Default()->ParallelFor(
      sub.vertices.size(),
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        uint64_t local_edges = 0;
        for (uint64_t i = begin; i < end; ++i) {
          const VertexId u = sub.vertices[i];
          typename Program::VertexContext ctx;
          if (!program.BeginVertex(u, &ctx)) continue;
          const EdgeId lo = sub.row_offsets[i];
          const EdgeId hi = sub.row_offsets[i + 1];
          local_edges += hi - lo;
          for (EdgeId e = lo; e < hi; ++e) {
            const Weight w = sub.weights.empty() ? Weight{1} : sub.weights[e];
            if (program.ProcessEdge(ctx, u, sub.column_index[e], w)) {
              next->Activate(sub.column_index[e],
                             view.out_degree(sub.column_index[e]));
            }
          }
        }
        edges_processed.fetch_add(local_edges, std::memory_order_relaxed);
      },
      /*min_grain=*/64);
  return edges_processed.load();
}

}  // namespace hytgraph

#endif  // HYTGRAPH_ENGINE_KERNELS_H_
