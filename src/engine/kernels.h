// Host-executed "GPU kernels": push-mode edge relaxation over an active
// vertex set, parallelized on the thread pool. The vertex program supplies
// the per-vertex and per-edge behaviour; the kernel supplies iteration
// order, parallelism, and frontier maintenance. Results are exact — only
// the *time* of these kernels is taken from the compute model.
//
// Edge expansion runs on a GraphView: vertices with no pending delta take
// the dense base-CSR span path (identical code to the static engine);
// delta vertices merge tombstone-filtered base edges with overlay inserts
// on the fly. A query therefore never waits for a snapshot fold — the
// per-vertex overlay lookup is the price, measured by bench_view_overhead.
//
// Program concept (see algorithms/programs.h for implementations):
//   struct P {
//     using VertexContext = ...;       // per-source state for one visit
//     bool BeginVertex(VertexId u, VertexContext* ctx);   // false: skip u
//     bool ProcessEdge(const VertexContext& ctx, VertexId u, VertexId v,
//                      Weight w);      // true: v's value changed, activate
//   };

#ifndef HYTGRAPH_ENGINE_KERNELS_H_
#define HYTGRAPH_ENGINE_KERNELS_H_

#include <cstdint>
#include <span>

#include "engine/compactor.h"
#include "engine/frontier.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "util/thread_pool.h"

namespace hytgraph {

/// Relaxes all out-edges of every vertex in `actives` against `view`,
/// activating changed targets in `next`. Returns the number of edges
/// processed (the kernel-time unit).
template <typename Program>
uint64_t RunKernel(const GraphView& view, std::span<const VertexId> actives,
                   Program& program, Frontier* next) {
  if (actives.empty()) return 0;
  const CsrGraph& base = view.base();
  std::atomic<uint64_t> edges_processed{0};
  ThreadPool::Default()->ParallelFor(
      actives.size(),
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        uint64_t local_edges = 0;
        for (uint64_t i = begin; i < end; ++i) {
          const VertexId u = actives[i];
          typename Program::VertexContext ctx;
          if (!program.BeginVertex(u, &ctx)) continue;
          if (view.HasDelta(u)) {
            // Merged adjacency: surviving base edges, then overlay inserts.
            view.ForEachNeighbor(u, [&](VertexId v, Weight w) {
              ++local_edges;
              if (program.ProcessEdge(ctx, u, v, w)) next->Activate(v);
            });
            continue;
          }
          const auto nbrs = base.neighbors(u);
          const auto wts = base.weights(u);
          local_edges += nbrs.size();
          for (size_t e = 0; e < nbrs.size(); ++e) {
            const Weight w = wts.empty() ? Weight{1} : wts[e];
            if (program.ProcessEdge(ctx, u, nbrs[e], w)) {
              next->Activate(nbrs[e]);
            }
          }
        }
        edges_processed.fetch_add(local_edges, std::memory_order_relaxed);
      },
      /*min_grain=*/64);
  return edges_processed.load();
}

/// CsrGraph convenience overload (static callers, tests): a transparent
/// non-owning view over `graph`.
template <typename Program>
uint64_t RunKernel(const CsrGraph& graph, std::span<const VertexId> actives,
                   Program& program, Frontier* next) {
  return RunKernel(GraphView::Wrap(graph), actives, program, next);
}

/// Same as RunKernel but over a compacted subgraph (Subway-style GPU-side
/// processing of the shipped sub-CSR). Identical relaxation semantics.
template <typename Program>
uint64_t RunKernelOnSubCsr(const SubCsr& sub, Program& program,
                           Frontier* next) {
  if (sub.vertices.empty()) return 0;
  std::atomic<uint64_t> edges_processed{0};
  ThreadPool::Default()->ParallelFor(
      sub.vertices.size(),
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        uint64_t local_edges = 0;
        for (uint64_t i = begin; i < end; ++i) {
          const VertexId u = sub.vertices[i];
          typename Program::VertexContext ctx;
          if (!program.BeginVertex(u, &ctx)) continue;
          const EdgeId lo = sub.row_offsets[i];
          const EdgeId hi = sub.row_offsets[i + 1];
          local_edges += hi - lo;
          for (EdgeId e = lo; e < hi; ++e) {
            const Weight w = sub.weights.empty() ? Weight{1} : sub.weights[e];
            if (program.ProcessEdge(ctx, u, sub.column_index[e], w)) {
              next->Activate(sub.column_index[e]);
            }
          }
        }
        edges_processed.fetch_add(local_edges, std::memory_order_relaxed);
      },
      /*min_grain=*/64);
  return edges_processed.load();
}

}  // namespace hytgraph

#endif  // HYTGRAPH_ENGINE_KERNELS_H_
