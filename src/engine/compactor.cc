#include "engine/compactor.h"

#include <cstring>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace hytgraph {

CompactionResult CompactActiveEdges(const CsrGraph& graph,
                                    std::span<const VertexId> actives,
                                    bool include_weights) {
  WallTimer timer;
  CompactionResult result;
  SubCsr& sub = result.sub;

  sub.vertices.assign(actives.begin(), actives.end());
  sub.row_offsets.resize(actives.size() + 1);
  sub.row_offsets[0] = 0;
  for (size_t i = 0; i < actives.size(); ++i) {
    sub.row_offsets[i + 1] =
        sub.row_offsets[i] + graph.out_degree(actives[i]);
  }
  const EdgeId total_edges = sub.row_offsets.back();
  sub.column_index.resize(total_edges);
  const bool weighted = include_weights && graph.is_weighted();
  if (weighted) sub.weights.resize(total_edges);

  // Parallel gather: each shard owns a contiguous range of active vertices
  // and copies their runs with memcpy (this is the real CPU/memory work that
  // makes compaction expensive).
  ThreadPool::Default()->ParallelFor(
      actives.size(),
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          const VertexId v = actives[i];
          const EdgeId deg = graph.out_degree(v);
          if (deg == 0) continue;
          const EdgeId src_off = graph.edge_begin(v);
          const EdgeId dst_off = sub.row_offsets[i];
          std::memcpy(sub.column_index.data() + dst_off,
                      graph.column_index().data() + src_off,
                      deg * sizeof(VertexId));
          if (weighted) {
            std::memcpy(sub.weights.data() + dst_off,
                        graph.edge_weights().data() + src_off,
                        deg * sizeof(Weight));
          }
        }
      },
      /*min_grain=*/256);

  result.measured_seconds = timer.Seconds();
  // Read the run + write the run, for both arrays when weighted.
  const uint64_t per_edge =
      (kBytesPerNeighbor + (weighted ? sizeof(Weight) : 0)) * 2;
  result.bytes_moved =
      total_edges * per_edge + sub.vertices.size() * kBytesPerIndexEntry;
  return result;
}

}  // namespace hytgraph
