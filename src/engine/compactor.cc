#include "engine/compactor.h"

#include <cstring>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace hytgraph {

CompactionResult CompactActiveEdges(const GraphView& view,
                                    std::span<const VertexId> actives,
                                    bool include_weights) {
  WallTimer timer;
  CompactionResult result;
  SubCsr& sub = result.sub;
  const CsrGraph& base = view.base();

  sub.vertices.assign(actives.begin(), actives.end());
  sub.row_offsets.resize(actives.size() + 1);
  sub.row_offsets[0] = 0;
  for (size_t i = 0; i < actives.size(); ++i) {
    sub.row_offsets[i + 1] =
        sub.row_offsets[i] + view.out_degree(actives[i]);
  }
  const EdgeId total_edges = sub.row_offsets.back();
  sub.column_index.resize(total_edges);
  const bool weighted = include_weights && view.is_weighted();
  if (weighted) sub.weights.resize(total_edges);

  // Parallel gather: each shard owns a contiguous range of active vertices.
  // Clean vertices copy their base runs with memcpy (the real CPU/memory
  // work that makes compaction expensive); delta vertices gather through
  // the merged overlay iteration.
  ThreadPool::Default()->ParallelFor(
      actives.size(),
      [&](int /*shard*/, uint64_t begin, uint64_t end) {
        // One lease per shard: actives are sorted, so an out-of-core base
        // re-pins only on block-boundary crossings.
        BlockRef lease;
        for (uint64_t i = begin; i < end; ++i) {
          const VertexId v = actives[i];
          const EdgeId dst_off = sub.row_offsets[i];
          if (view.HasDelta(v)) {
            EdgeId out = dst_off;
            view.ForEachNeighborLeased(v, &lease, [&](VertexId dst, Weight w) {
              sub.column_index[out] = dst;
              if (weighted) sub.weights[out] = w;
              ++out;
            });
            continue;
          }
          const EdgeId deg = base.out_degree(v);
          if (deg == 0) continue;
          // A vertex's whole run lives inside one block, so the spans are
          // contiguous whether they point into the base CSR or a cached
          // block — memcpy works for both.
          const AdjacencyRun run = view.BaseRun(v, &lease);
          std::memcpy(sub.column_index.data() + dst_off, run.targets.data(),
                      deg * sizeof(VertexId));
          if (weighted) {
            std::memcpy(sub.weights.data() + dst_off, run.weights.data(),
                        deg * sizeof(Weight));
          }
        }
      },
      /*min_grain=*/256);

  result.measured_seconds = timer.Seconds();
  // Read the run + write the run, for both arrays when weighted.
  const uint64_t per_edge =
      (kBytesPerNeighbor + (weighted ? sizeof(Weight) : 0)) * 2;
  result.bytes_moved =
      total_edges * per_edge + sub.vertices.size() * kBytesPerIndexEntry;
  return result;
}

}  // namespace hytgraph
