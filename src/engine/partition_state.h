// Per-iteration, per-partition activity statistics: the inputs to cost
// formulas (1)-(3). Computed in parallel from the frontier at the start of
// every iteration ("the cost computation between partitions is independent",
// Section V-A — the paper does it on the GPU; we do it on the pool).
//
// Stats are computed against a GraphView, so `active_edges` and
// `zc_requests` are overlay-adjusted: degrees come from the view's merged
// adjacency and request counts from its logical (folded-CSR) offsets.
// Engine selection under a pending mutation delta therefore matches the
// selection a compacted snapshot would produce — no pre-query fold needed
// to keep formulas (1)-(3) honest.

#ifndef HYTGRAPH_ENGINE_PARTITION_STATE_H_
#define HYTGRAPH_ENGINE_PARTITION_STATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "engine/frontier.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "graph/partitioner.h"
#include "sim/zero_copy.h"

namespace hytgraph {

struct PartitionStats {
  uint64_t active_vertices = 0;
  /// Out-edges of the active vertices in the *mutated* graph (view
  /// degrees: base minus tombstoned plus inserted).
  uint64_t active_edges = 0;
  /// Zero-copy memory requests to fetch all active runs — formula (3)'s
  /// sum over active v of ceil(Do(v)*d1/m) + am(v), where am(v) in {0, 1}
  /// charges one extra transaction when v's run starts mid-line (see
  /// ZeroCopyAccess::RequestsForRun, pinned by sim_zero_copy_test).
  /// Computed from the view's logical offsets, i.e. the folded layout.
  uint64_t zc_requests = 0;
  /// Sum of a program-defined priority weight (e.g. |delta|) over active
  /// vertices; 0 when the program has no delta notion.
  double delta_sum = 0;
  /// Whether every edge block covering this partition is resident in the
  /// out-of-core block cache (always true when the base is in memory). A
  /// non-resident partition pays a host-disk stream-in before any transfer
  /// engine can run; the cost model charges it uniformly across engines.
  bool resident = true;

  bool HasWork() const { return active_vertices > 0; }
};

/// The frontier of one iteration resolved against the partitioning: the
/// sorted global active list, per-partition slices of it, and per-partition
/// stats.
struct IterationState {
  std::vector<VertexId> actives;        // sorted ascending
  std::vector<size_t> slice_offsets;    // per partition: [off[i], off[i+1])
  std::vector<PartitionStats> stats;
  uint64_t total_active_edges = 0;

  std::span<const VertexId> Slice(uint32_t partition) const {
    return std::span<const VertexId>(actives.data() + slice_offsets[partition],
                                     slice_offsets[partition + 1] -
                                         slice_offsets[partition]);
  }
  uint64_t total_active_vertices() const { return actives.size(); }
};

/// Optional per-vertex priority weight source (|delta| for PR/PHP).
using DeltaFn = double (*)(const void* program, VertexId v);

/// Builds the IterationState for `frontier`. `include_weights` controls
/// whether zero-copy request counts cover the weight array too (weighted
/// algorithms fetch neighbours + weights). `delta_fn`/`program` may be null.
/// `actives_storage` is an optional recycled buffer the active list is
/// collected into (moved into the returned state); callers running one
/// state per iteration pass the previous iteration's vector back to avoid
/// the per-iteration reallocation.
IterationState BuildIterationState(const GraphView& view,
                                   const std::vector<Partition>& partitions,
                                   const Frontier& frontier,
                                   const ZeroCopyAccess& zc_access,
                                   bool include_weights,
                                   DeltaFn delta_fn = nullptr,
                                   const void* program = nullptr,
                                   std::vector<VertexId> actives_storage = {});

/// Out-edges of the frontier in the mutated graph — the m_f of the
/// Beamer-style direction decision, computed with a dense bitmap scan and
/// the view's O(1) degrees (no active-list materialization, no per-
/// partition stats). Matches IterationState::total_active_edges exactly;
/// pull iterations use this instead of BuildIterationState, which exists
/// to feed the push pipeline's cost formulas.
uint64_t FrontierActiveEdges(const GraphView& view, const Frontier& frontier);

/// CsrGraph convenience overload (static callers, tests).
inline IterationState BuildIterationState(
    const CsrGraph& graph, const std::vector<Partition>& partitions,
    const Frontier& frontier, const ZeroCopyAccess& zc_access,
    bool include_weights, DeltaFn delta_fn = nullptr,
    const void* program = nullptr) {
  return BuildIterationState(GraphView::Wrap(graph), partitions, frontier,
                             zc_access, include_weights, delta_fn, program);
}

}  // namespace hytgraph

#endif  // HYTGRAPH_ENGINE_PARTITION_STATE_H_
