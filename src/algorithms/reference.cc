#include "algorithms/reference.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "algorithms/programs.h"

namespace hytgraph {

std::vector<uint32_t> ReferenceBfs(const CsrGraph& graph, VertexId source) {
  std::vector<uint32_t> levels(graph.num_vertices(), kUnreachable);
  std::deque<VertexId> queue;
  levels[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : graph.neighbors(u)) {
      if (levels[v] == kUnreachable) {
        levels[v] = levels[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return levels;
}

std::vector<uint32_t> ReferenceSssp(const CsrGraph& graph, VertexId source) {
  std::vector<uint32_t> dists(graph.num_vertices(), kUnreachable);
  using Entry = std::pair<uint32_t, VertexId>;  // (dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dists[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > dists[u]) continue;  // stale entry
    const auto nbrs = graph.neighbors(u);
    const auto wts = graph.weights(u);
    for (size_t e = 0; e < nbrs.size(); ++e) {
      const uint32_t w = wts.empty() ? 1u : wts[e];
      const uint32_t candidate = dist + w;
      if (candidate < dists[nbrs[e]]) {
        dists[nbrs[e]] = candidate;
        heap.emplace(candidate, nbrs[e]);
      }
    }
  }
  return dists;
}

std::vector<uint32_t> ReferenceSswp(const CsrGraph& graph, VertexId source) {
  std::vector<uint32_t> widths(graph.num_vertices(), 0);
  using Entry = std::pair<uint32_t, VertexId>;  // (width, vertex), max-heap
  std::priority_queue<Entry> heap;
  widths[source] = std::numeric_limits<uint32_t>::max();
  heap.emplace(widths[source], source);
  while (!heap.empty()) {
    const auto [width, u] = heap.top();
    heap.pop();
    if (width < widths[u]) continue;  // stale entry
    const auto nbrs = graph.neighbors(u);
    const auto wts = graph.weights(u);
    for (size_t e = 0; e < nbrs.size(); ++e) {
      const uint32_t w = wts.empty() ? 1u : wts[e];
      const uint32_t candidate = std::min(width, w);
      if (candidate > widths[nbrs[e]]) {
        widths[nbrs[e]] = candidate;
        heap.emplace(candidate, nbrs[e]);
      }
    }
  }
  return widths;
}

std::vector<uint32_t> ReferenceCc(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<uint32_t> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : graph.neighbors(u)) {
        if (labels[u] < labels[v]) {
          labels[v] = labels[u];
          changed = true;
        }
      }
    }
  }
  return labels;
}

std::vector<double> ReferencePageRank(const CsrGraph& graph, double damping,
                                      double epsilon) {
  const VertexId n = graph.num_vertices();
  std::vector<double> ranks(n, 0.0);
  std::vector<double> deltas(n, 1.0 - damping);
  std::vector<double> incoming(n, 0.0);
  bool active = true;
  while (active) {
    active = false;
    std::fill(incoming.begin(), incoming.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      if (deltas[u] < epsilon) continue;
      active = true;
      const double delta = deltas[u];
      deltas[u] = 0.0;
      ranks[u] += delta;
      const EdgeId deg = graph.out_degree(u);
      if (deg == 0) continue;
      const double contribution = damping * delta / static_cast<double>(deg);
      for (VertexId v : graph.neighbors(u)) incoming[v] += contribution;
    }
    for (VertexId v = 0; v < n; ++v) deltas[v] += incoming[v];
  }
  for (VertexId v = 0; v < n; ++v) ranks[v] += deltas[v];
  return ranks;
}

std::vector<double> ReferencePhp(const CsrGraph& graph, VertexId source,
                                 double damping, double epsilon) {
  const VertexId n = graph.num_vertices();
  std::vector<double> values(n, 0.0);
  std::vector<double> deltas(n, 0.0);
  std::vector<double> incoming(n, 0.0);
  std::vector<double> weight_sums(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    for (Weight w : graph.weights(v)) weight_sums[v] += w;
  }
  deltas[source] = 1.0;
  bool active = true;
  while (active) {
    active = false;
    std::fill(incoming.begin(), incoming.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      if (deltas[u] < epsilon) continue;
      active = true;
      const double delta = deltas[u];
      deltas[u] = 0.0;
      values[u] += delta;
      if (weight_sums[u] == 0.0) continue;
      const double scaled = damping * delta / weight_sums[u];
      const auto nbrs = graph.neighbors(u);
      const auto wts = graph.weights(u);
      for (size_t e = 0; e < nbrs.size(); ++e) {
        if (nbrs[e] == source) continue;
        incoming[nbrs[e]] += scaled * (wts.empty() ? 1.0 : wts[e]);
      }
    }
    for (VertexId v = 0; v < n; ++v) deltas[v] += incoming[v];
  }
  for (VertexId v = 0; v < n; ++v) values[v] += deltas[v];
  return values;
}

}  // namespace hytgraph
