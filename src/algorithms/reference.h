// Serial reference implementations used to validate the parallel,
// transfer-managed engines: classic textbook algorithms with no frontier
// tricks, no asynchrony, no simulator. Tests assert that every SystemKind
// produces these results (exactly for selection algorithms, within epsilon
// for accumulation algorithms).

#ifndef HYTGRAPH_ALGORITHMS_REFERENCE_H_
#define HYTGRAPH_ALGORITHMS_REFERENCE_H_

#include <vector>

#include "graph/csr_graph.h"

namespace hytgraph {

/// BFS levels from `source` (kUnreachable for unreached vertices).
std::vector<uint32_t> ReferenceBfs(const CsrGraph& graph, VertexId source);

/// Dijkstra distances from `source` (kUnreachable for unreached vertices).
std::vector<uint32_t> ReferenceSssp(const CsrGraph& graph, VertexId source);

/// Min-label propagation along out-edges to fixpoint — identical semantics
/// to CcProgram (true connected components on symmetrized graphs).
std::vector<uint32_t> ReferenceCc(const CsrGraph& graph);

/// Δ-accumulative PageRank run synchronously to `epsilon` residual.
std::vector<double> ReferencePageRank(const CsrGraph& graph,
                                      double damping = 0.85,
                                      double epsilon = 1e-6);

/// Widest-path (max-min) values from `source` — modified Dijkstra.
std::vector<uint32_t> ReferenceSswp(const CsrGraph& graph, VertexId source);

/// Synchronous PHP from `source`.
std::vector<double> ReferencePhp(const CsrGraph& graph, VertexId source,
                                 double damping = 0.8,
                                 double epsilon = 1e-6);

}  // namespace hytgraph

#endif  // HYTGRAPH_ALGORITHMS_REFERENCE_H_
