#include "algorithms/runner.h"

#include <utility>

#include "algorithms/programs.h"
#include "core/solver.h"
#include "graph/hub_sort.h"

namespace hytgraph {

Result<PreparedGraph> PreparedGraph::Make(const GraphView& view,
                                          const SolverOptions& options) {
  PreparedGraph prepared;
  if (WantsReorder(options) && view.num_vertices() > 0) {
    HYT_ASSIGN_OR_RETURN(HubSortViewResult sorted,
                         HubSortView(view, options.hub_fraction));
    prepared.reordered_ = true;
    prepared.view_ = std::move(sorted.view);
    prepared.old_to_new_ = std::move(sorted.old_to_new);
    prepared.new_to_old_ = std::move(sorted.new_to_old);
  } else {
    prepared.view_ = view;
  }
  return prepared;
}

namespace {

/// Shared run skeleton: build solver, init, run program, map values back.
template <typename Program, typename MakeProgram>
Result<AlgorithmOutput<typename Program::Value>> RunWith(
    const PreparedGraph& prepared, const SolverOptions& options,
    MakeProgram make_program) {
  Solver<Program> solver(prepared.view(), options);
  HYT_RETURN_NOT_OK(solver.Init());
  Program program = make_program(prepared.view());
  HYT_ASSIGN_OR_RETURN(RunTrace trace, solver.Run(&program));
  AlgorithmOutput<typename Program::Value> output;
  output.values = prepared.MapValuesBack(program.Values());
  output.trace = std::move(trace);
  return output;
}

}  // namespace

Result<AlgorithmOutput<uint32_t>> RunBfsOn(const PreparedGraph& prepared,
                                           VertexId source,
                                           const SolverOptions& options) {
  const VertexId mapped = prepared.MapSource(source);
  return RunWith<BfsProgram>(prepared, options, [&](const GraphView& g) {
    return BfsProgram(g, mapped);
  });
}

Result<AlgorithmOutput<uint32_t>> RunSsspOn(const PreparedGraph& prepared,
                                            VertexId source,
                                            const SolverOptions& options) {
  const VertexId mapped = prepared.MapSource(source);
  return RunWith<SsspProgram>(prepared, options, [&](const GraphView& g) {
    return SsspProgram(g, mapped);
  });
}

Result<AlgorithmOutput<uint32_t>> RunCcOn(const PreparedGraph& prepared,
                                          const SolverOptions& options) {
  HYT_ASSIGN_OR_RETURN(
      auto output,
      RunWith<CcProgram>(prepared, options,
                         [&](const GraphView& g) { return CcProgram(g); }));
  if (prepared.reordered()) {
    // CC labels are vertex ids: translate them back to original ids so they
    // are meaningful to the caller. (Note: min-label propagation fixpoints
    // depend on the id order on *directed* graphs — prefer RunCc, which
    // skips the reordering for CC, when exact label semantics matter.)
    for (uint32_t& label : output.values) {
      label = prepared.MapVertexBack(label);
    }
  }
  return output;
}

Result<AlgorithmOutput<double>> RunPageRankOn(const PreparedGraph& prepared,
                                              const SolverOptions& options,
                                              double damping,
                                              double epsilon) {
  PageRankOptions pr;
  pr.damping = damping;
  pr.epsilon = epsilon;
  return RunWith<PageRankProgram>(prepared, options, [&](const GraphView& g) {
    return PageRankProgram(g, pr);
  });
}

Result<AlgorithmOutput<double>> RunPhpOn(const PreparedGraph& prepared,
                                         VertexId source,
                                         const SolverOptions& options,
                                         double damping, double epsilon) {
  PhpOptions php;
  php.damping = damping;
  php.epsilon = epsilon;
  const VertexId mapped = prepared.MapSource(source);
  return RunWith<PhpProgram>(prepared, options, [&](const GraphView& g) {
    return PhpProgram(g, mapped, php);
  });
}

Result<AlgorithmOutput<uint32_t>> RunSswpOn(const PreparedGraph& prepared,
                                            VertexId source,
                                            const SolverOptions& options) {
  const VertexId mapped = prepared.MapSource(source);
  return RunWith<SswpProgram>(prepared, options, [&](const GraphView& g) {
    return SswpProgram(g, mapped);
  });
}

Result<RunTrace> RunAlgorithmTrace(const CsrGraph& graph,
                                   AlgorithmId algorithm, VertexId source,
                                   const SolverOptions& options) {
  const SolverOptions effective = EffectiveOptions(algorithm, options);
  HYT_ASSIGN_OR_RETURN(PreparedGraph prepared,
                       PreparedGraph::Make(graph, effective));
  HYT_ASSIGN_OR_RETURN(
      AlgorithmRun run,
      RunAlgorithmOn(prepared, algorithm, source, AlgoParams{}, effective));
  return std::move(run.trace);
}

}  // namespace hytgraph
