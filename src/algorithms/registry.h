// The algorithm registry: one descriptor per built-in algorithm, keyed by
// AlgorithmId. This is the single source of truth the Engine facade, the
// CLI, and the bench sweeps dispatch through — adding an algorithm means
// adding one entry here (and its program in programs.h), not a new set of
// free functions.
//
// Each entry carries the canonical short name (stable, used in tables and
// traces), parse aliases, the execution traits the engine needs (does it
// take a source vertex? does it transfer edge weights?), and a type-erased
// run hook over a PreparedGraph.

#ifndef HYTGRAPH_ALGORITHMS_REGISTRY_H_
#define HYTGRAPH_ALGORITHMS_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "algorithms/programs.h"
#include "core/options.h"
#include "core/trace.h"
#include "graph/types.h"
#include "util/status.h"

namespace hytgraph {

class PreparedGraph;  // algorithms/runner.h

/// Every built-in algorithm. The first four (the paper's evaluation set)
/// keep their historical enum values; PHP and SSWP extend the sweep so no
/// path silently skips them.
enum class AlgorithmId {
  kPageRank = 0,
  kSssp = 1,
  kCc = 2,
  kBfs = 3,
  kPhp = 4,
  kSswp = 5,
};

/// All registered algorithms, in registry order (sweep over this instead of
/// hand-maintained subsets).
inline constexpr AlgorithmId kAllAlgorithms[] = {
    AlgorithmId::kPageRank, AlgorithmId::kSssp, AlgorithmId::kCc,
    AlgorithmId::kBfs,      AlgorithmId::kPhp,  AlgorithmId::kSswp,
};

/// Typed per-algorithm parameters. Replaces the loose `damping`/`epsilon`
/// defaults that used to ride on the Run* signatures: a Query carries one
/// AlgoParams and each algorithm reads only its own member.
struct AlgoParams {
  PageRankOptions pagerank;
  PhpOptions php;
};

/// Type-erased algorithm values: the value-selection family (BFS, SSSP, CC,
/// SSWP) produces uint32_t per vertex, the value-accumulation family
/// (PageRank, PHP) produces double.
using QueryValues =
    std::variant<std::vector<uint32_t>, std::vector<double>>;

/// What a registry run returns: values (indexed by original vertex id) plus
/// the execution trace.
struct AlgorithmRun {
  QueryValues values;
  RunTrace trace;
};

struct AlgorithmInfo {
  AlgorithmId id;
  /// Canonical short name ("PR", "SSSP", ...) — stable across releases,
  /// printed in bench tables.
  const char* name;
  /// Human-readable long name ("PageRank", ...).
  const char* full_name;
  /// Lower-case parse aliases (canonical name also parses, any case).
  std::span<const char* const> aliases;
  /// Whether the algorithm is seeded from a source vertex (BFS, SSSP, PHP,
  /// SSWP) or runs over all vertices (PR, CC).
  bool needs_source;
  /// Whether edge weights must be transferred (SSSP, PHP, SSWP).
  bool needs_weights;
  /// Whether values are double (PR, PHP) rather than uint32_t.
  bool value_is_f64;
  /// Runs the algorithm on an already-prepared graph. `source` is in
  /// original vertex ids and ignored when !needs_source.
  Result<AlgorithmRun> (*run)(const PreparedGraph& prepared, VertexId source,
                              const AlgoParams& params,
                              const SolverOptions& options);
};

/// The full registry, in kAllAlgorithms order.
std::span<const AlgorithmInfo> AlgorithmRegistry();

/// Looks up an algorithm, or nullptr for an id outside the registry (an
/// unchecked int from config/serialization). Fallible entry points
/// (Engine, RunAlgorithmOn) use this to reject unknown ids.
const AlgorithmInfo* FindAlgorithmInfo(AlgorithmId id);

/// Registry entry for a known-valid id; check-fails on an unknown one.
const AlgorithmInfo& GetAlgorithmInfo(AlgorithmId id);

/// Canonical short name of an algorithm ("PR", "SSSP", "CC", "BFS", "PHP",
/// "SSWP").
const char* AlgorithmName(AlgorithmId id);

/// Parses an algorithm name or alias, case-insensitively ("pr", "PageRank",
/// "sswp", ...). Mirrors ParseSystemKind.
Result<AlgorithmId> ParseAlgorithmName(const std::string& name);

/// Per-algorithm options fixups applied before preparation and execution:
/// CC pins hub_fraction to 0 because its labels are vertex ids whose
/// fixpoint depends on the id order (see RunCc).
SolverOptions EffectiveOptions(AlgorithmId id, const SolverOptions& options);

/// Type-erased dispatch: runs `id` on `prepared` (which must have been
/// built with EffectiveOptions(id, options)-compatible options).
Result<AlgorithmRun> RunAlgorithmOn(const PreparedGraph& prepared,
                                    AlgorithmId id, VertexId source,
                                    const AlgoParams& params,
                                    const SolverOptions& options);

}  // namespace hytgraph

#endif  // HYTGRAPH_ALGORITHMS_REGISTRY_H_
