#include "algorithms/registry.h"

#include <cctype>

#include "algorithms/runner.h"
#include "util/logging.h"

namespace hytgraph {

namespace {

/// Adapts a typed AlgorithmOutput<V> into the type-erased AlgorithmRun.
template <typename V>
Result<AlgorithmRun> Erase(Result<AlgorithmOutput<V>> output) {
  if (!output.ok()) return output.status();
  AlgorithmRun run;
  run.values = std::move(output->values);
  run.trace = std::move(output->trace);
  return run;
}

Result<AlgorithmRun> RunPr(const PreparedGraph& prepared, VertexId /*source*/,
                           const AlgoParams& params,
                           const SolverOptions& options) {
  return Erase(RunPageRankOn(prepared, options, params.pagerank.damping,
                             params.pagerank.epsilon));
}

Result<AlgorithmRun> RunSsspEntry(const PreparedGraph& prepared,
                                  VertexId source, const AlgoParams&,
                                  const SolverOptions& options) {
  return Erase(RunSsspOn(prepared, source, options));
}

Result<AlgorithmRun> RunCcEntry(const PreparedGraph& prepared,
                                VertexId /*source*/, const AlgoParams&,
                                const SolverOptions& options) {
  return Erase(RunCcOn(prepared, options));
}

Result<AlgorithmRun> RunBfsEntry(const PreparedGraph& prepared,
                                 VertexId source, const AlgoParams&,
                                 const SolverOptions& options) {
  return Erase(RunBfsOn(prepared, source, options));
}

Result<AlgorithmRun> RunPhpEntry(const PreparedGraph& prepared,
                                 VertexId source, const AlgoParams& params,
                                 const SolverOptions& options) {
  return Erase(RunPhpOn(prepared, source, options, params.php.damping,
                        params.php.epsilon));
}

Result<AlgorithmRun> RunSswpEntry(const PreparedGraph& prepared,
                                  VertexId source, const AlgoParams&,
                                  const SolverOptions& options) {
  return Erase(RunSswpOn(prepared, source, options));
}

constexpr const char* kPrAliases[] = {"pr", "pagerank"};
constexpr const char* kSsspAliases[] = {"sssp", "shortest-paths"};
constexpr const char* kCcAliases[] = {"cc", "wcc", "components"};
constexpr const char* kBfsAliases[] = {"bfs"};
constexpr const char* kPhpAliases[] = {"php", "hitting-probability"};
constexpr const char* kSswpAliases[] = {"sswp", "widest-path"};

constexpr AlgorithmInfo kRegistry[] = {
    {AlgorithmId::kPageRank, "PR", "PageRank", kPrAliases,
     /*needs_source=*/false, /*needs_weights=*/false, /*value_is_f64=*/true,
     &RunPr},
    {AlgorithmId::kSssp, "SSSP", "Single-Source Shortest Paths",
     kSsspAliases, /*needs_source=*/true, /*needs_weights=*/true,
     /*value_is_f64=*/false, &RunSsspEntry},
    {AlgorithmId::kCc, "CC", "Connected Components", kCcAliases,
     /*needs_source=*/false, /*needs_weights=*/false, /*value_is_f64=*/false,
     &RunCcEntry},
    {AlgorithmId::kBfs, "BFS", "Breadth-First Search", kBfsAliases,
     /*needs_source=*/true, /*needs_weights=*/false, /*value_is_f64=*/false,
     &RunBfsEntry},
    {AlgorithmId::kPhp, "PHP", "Penalized Hitting Probability", kPhpAliases,
     /*needs_source=*/true, /*needs_weights=*/true, /*value_is_f64=*/true,
     &RunPhpEntry},
    {AlgorithmId::kSswp, "SSWP", "Single-Source Widest Path", kSswpAliases,
     /*needs_source=*/true, /*needs_weights=*/true, /*value_is_f64=*/false,
     &RunSswpEntry},
};

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::span<const AlgorithmInfo> AlgorithmRegistry() { return kRegistry; }

const AlgorithmInfo* FindAlgorithmInfo(AlgorithmId id) {
  for (const AlgorithmInfo& info : kRegistry) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

const AlgorithmInfo& GetAlgorithmInfo(AlgorithmId id) {
  const AlgorithmInfo* info = FindAlgorithmInfo(id);
  HYT_CHECK(info != nullptr)
      << "unknown AlgorithmId " << static_cast<int>(id);
  return *info;
}

const char* AlgorithmName(AlgorithmId id) { return GetAlgorithmInfo(id).name; }

Result<AlgorithmId> ParseAlgorithmName(const std::string& name) {
  const std::string lower = ToLower(name);
  for (const AlgorithmInfo& info : kRegistry) {
    if (lower == ToLower(info.name) || lower == ToLower(info.full_name)) {
      return info.id;
    }
    for (const char* alias : info.aliases) {
      if (lower == alias) return info.id;
    }
  }
  return Status::NotFound("unknown algorithm: " + name);
}

SolverOptions EffectiveOptions(AlgorithmId id, const SolverOptions& options) {
  SolverOptions effective = options;
  if (id == AlgorithmId::kCc) {
    // CC labels are vertex ids whose min-label fixpoint depends on the id
    // order on directed graphs: skip the hub-sort relabeling so results
    // stay in natural-id semantics (hub-driven task priority still applies
    // at partition granularity).
    effective.hub_fraction = 0.0;
  }
  return effective;
}

Result<AlgorithmRun> RunAlgorithmOn(const PreparedGraph& prepared,
                                    AlgorithmId id, VertexId source,
                                    const AlgoParams& params,
                                    const SolverOptions& options) {
  const AlgorithmInfo* info = FindAlgorithmInfo(id);
  if (info == nullptr) {
    return Status::InvalidArgument("unknown algorithm id: " +
                                   std::to_string(static_cast<int>(id)));
  }
  return info->run(prepared, source, params, options);
}

}  // namespace hytgraph
