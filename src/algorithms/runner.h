// High-level, hub-sort-aware entry points: run algorithm X on graph G as
// system S and get (values in original vertex ids, execution trace) back.
// This is the public API the examples and benches use.
//
// HyTGraph with contribution-driven scheduling requires the hub-sorted
// vertex order (Section VI-A); these runners apply the reordering, remap the
// source, run the solver, and map values back — callers never see relabeled
// ids. The hub sort is recomputed per call; for repeated runs over one graph
// build a PreparedGraph once and use the *On overloads.

#ifndef HYTGRAPH_ALGORITHMS_RUNNER_H_
#define HYTGRAPH_ALGORITHMS_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/trace.h"
#include "graph/csr_graph.h"
#include "util/status.h"

namespace hytgraph {

/// A graph preprocessed for a particular options set: hub-sorted when the
/// system needs it, plus the id mappings.
class PreparedGraph {
 public:
  /// Prepares `graph` for `options`. The source graph must outlive the
  /// PreparedGraph (un-sorted preparation keeps a reference, not a copy).
  static Result<PreparedGraph> Make(const CsrGraph& graph,
                                    const SolverOptions& options);

  const CsrGraph& graph() const {
    return reordered_ ? sorted_graph_ : *original_;
  }
  bool reordered() const { return reordered_; }
  VertexId MapSource(VertexId original_id) const {
    return reordered_ ? old_to_new_[original_id] : original_id;
  }

  /// Maps a solver-space vertex id back to the original id (identity when
  /// not reordered). Used for value payloads that are themselves vertex ids
  /// (CC labels).
  VertexId MapVertexBack(VertexId solver_id) const {
    return reordered_ ? new_to_old_[solver_id] : solver_id;
  }

  /// Maps a value vector from solver (possibly relabeled) ids back to the
  /// original ids.
  template <typename T>
  std::vector<T> MapValuesBack(std::vector<T> values) const {
    if (!reordered_) return values;
    std::vector<T> out(values.size());
    for (size_t new_id = 0; new_id < values.size(); ++new_id) {
      out[new_to_old_[new_id]] = values[new_id];
    }
    return out;
  }

 private:
  const CsrGraph* original_ = nullptr;
  bool reordered_ = false;
  CsrGraph sorted_graph_;
  std::vector<VertexId> old_to_new_;
  std::vector<VertexId> new_to_old_;
};

template <typename V>
struct AlgorithmOutput {
  std::vector<V> values;  // indexed by original vertex id
  RunTrace trace;
};

Result<AlgorithmOutput<uint32_t>> RunBfs(const CsrGraph& graph,
                                         VertexId source,
                                         const SolverOptions& options);
Result<AlgorithmOutput<uint32_t>> RunSssp(const CsrGraph& graph,
                                          VertexId source,
                                          const SolverOptions& options);
Result<AlgorithmOutput<uint32_t>> RunCc(const CsrGraph& graph,
                                        const SolverOptions& options);
Result<AlgorithmOutput<double>> RunPageRank(const CsrGraph& graph,
                                            const SolverOptions& options,
                                            double damping = 0.85,
                                            double epsilon = 1e-6);
Result<AlgorithmOutput<double>> RunPhp(const CsrGraph& graph, VertexId source,
                                       const SolverOptions& options,
                                       double damping = 0.8,
                                       double epsilon = 1e-6);
Result<AlgorithmOutput<uint32_t>> RunSswp(const CsrGraph& graph,
                                          VertexId source,
                                          const SolverOptions& options);

/// Overloads on an existing PreparedGraph (no re-sorting). The prepared
/// graph must have been built with compatible options.
Result<AlgorithmOutput<uint32_t>> RunBfsOn(const PreparedGraph& prepared,
                                           VertexId source,
                                           const SolverOptions& options);
Result<AlgorithmOutput<uint32_t>> RunSsspOn(const PreparedGraph& prepared,
                                            VertexId source,
                                            const SolverOptions& options);
Result<AlgorithmOutput<uint32_t>> RunCcOn(const PreparedGraph& prepared,
                                          const SolverOptions& options);
Result<AlgorithmOutput<double>> RunPageRankOn(const PreparedGraph& prepared,
                                              const SolverOptions& options,
                                              double damping = 0.85,
                                              double epsilon = 1e-6);
Result<AlgorithmOutput<double>> RunPhpOn(const PreparedGraph& prepared,
                                         VertexId source,
                                         const SolverOptions& options,
                                         double damping = 0.8,
                                         double epsilon = 1e-6);
Result<AlgorithmOutput<uint32_t>> RunSswpOn(const PreparedGraph& prepared,
                                            VertexId source,
                                            const SolverOptions& options);

/// The four paper algorithms for sweep-style benches.
enum class Algorithm { kPageRank = 0, kSssp = 1, kCc = 2, kBfs = 3 };
const char* AlgorithmName(Algorithm algorithm);

/// Runs `algorithm` (source used by BFS/SSSP) and returns just the trace —
/// the shape benches need.
Result<RunTrace> RunAlgorithmTrace(const CsrGraph& graph,
                                   Algorithm algorithm, VertexId source,
                                   const SolverOptions& options);

}  // namespace hytgraph

#endif  // HYTGRAPH_ALGORITHMS_RUNNER_H_
