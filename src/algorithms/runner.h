// Hub-sort-aware execution plumbing: PreparedGraph (a graph preprocessed
// for one options set) and per-algorithm runners over it.
//
// NOTE: the public facade of this library is `hytgraph::Engine`
// (core/engine.h). The Engine owns the graph, memoizes PreparedGraph
// instances across queries (so repeated queries never re-run the hub sort),
// dispatches through the algorithm registry (algorithms/registry.h), and
// batches multi-source query sets on the thread pool. The Run*On overloads
// below operate on an explicit PreparedGraph and back the registry's run
// hooks; construct an Engine and submit Query objects instead of calling
// them directly. (The old one-shot free functions RunBfs/RunSssp/... that
// re-prepared the graph on every call were removed after all callers
// migrated to the Engine.)
//
// HyTGraph with contribution-driven scheduling requires the hub-sorted
// vertex order (Section VI-A); these runners apply the reordering, remap the
// source, run the solver, and map values back — callers never see relabeled
// ids.

#ifndef HYTGRAPH_ALGORITHMS_RUNNER_H_
#define HYTGRAPH_ALGORITHMS_RUNNER_H_

#include <cstdint>
#include <vector>

#include "algorithms/registry.h"
#include "core/options.h"
#include "core/trace.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "util/status.h"

namespace hytgraph {

/// A graph preprocessed for a particular options set: hub-sorted when the
/// system needs it, plus the id mappings.
///
/// Preparation operates on GraphViews end to end. A reordering preparation
/// relabels the *base* CSR and remaps the pending overlay through the
/// permutation (the permutation itself comes from the view's mutated
/// degrees, so it matches what hub-sorting the folded CSR would produce);
/// a non-reordering preparation is the input view unchanged. Either way
/// the solver executes directly on base + delta — no snapshot fold.
class PreparedGraph {
 public:
  /// Whether `options` calls for the hub-sorted vertex order (the expensive
  /// part of preparation). Exposed so the Engine can fingerprint
  /// preparations: all options sets for which this is false share one
  /// identity preparation.
  static bool WantsReorder(const SolverOptions& options) {
    return options.system == SystemKind::kHyTGraph &&
           options.enable_contribution_scheduling &&
           options.hub_fraction > 0;
  }

  /// Prepares `view` for `options`. The view pins its own base/overlay
  /// snapshots, so the preparation is self-contained (when the view wraps
  /// borrowed storage, that storage must outlive the PreparedGraph).
  static Result<PreparedGraph> Make(const GraphView& view,
                                    const SolverOptions& options);

  /// Static-graph convenience. The graph must outlive the PreparedGraph.
  static Result<PreparedGraph> Make(const CsrGraph& graph,
                                    const SolverOptions& options) {
    return Make(GraphView::Wrap(graph), options);
  }

  /// The view the solver executes on (relabeled when reordered()).
  const GraphView& view() const { return view_; }
  bool reordered() const { return reordered_; }
  VertexId MapSource(VertexId original_id) const {
    return reordered_ ? old_to_new_[original_id] : original_id;
  }

  /// Maps a solver-space vertex id back to the original id (identity when
  /// not reordered). Used for value payloads that are themselves vertex ids
  /// (CC labels).
  VertexId MapVertexBack(VertexId solver_id) const {
    return reordered_ ? new_to_old_[solver_id] : solver_id;
  }

  /// Maps a value vector from solver (possibly relabeled) ids back to the
  /// original ids.
  template <typename T>
  std::vector<T> MapValuesBack(std::vector<T> values) const {
    if (!reordered_) return values;
    std::vector<T> out(values.size());
    for (size_t new_id = 0; new_id < values.size(); ++new_id) {
      out[new_to_old_[new_id]] = values[new_id];
    }
    return out;
  }

 private:
  GraphView view_;
  bool reordered_ = false;
  std::vector<VertexId> old_to_new_;
  std::vector<VertexId> new_to_old_;
};

template <typename V>
struct AlgorithmOutput {
  std::vector<V> values;  // indexed by original vertex id
  RunTrace trace;
};

/// Overloads on an existing PreparedGraph (no re-sorting). The prepared
/// graph must have been built with compatible options. These back the
/// algorithm registry's run hooks; call them through Engine/RunAlgorithmOn
/// rather than directly.
Result<AlgorithmOutput<uint32_t>> RunBfsOn(const PreparedGraph& prepared,
                                           VertexId source,
                                           const SolverOptions& options);
Result<AlgorithmOutput<uint32_t>> RunSsspOn(const PreparedGraph& prepared,
                                            VertexId source,
                                            const SolverOptions& options);
Result<AlgorithmOutput<uint32_t>> RunCcOn(const PreparedGraph& prepared,
                                          const SolverOptions& options);
Result<AlgorithmOutput<double>> RunPageRankOn(const PreparedGraph& prepared,
                                              const SolverOptions& options,
                                              double damping = 0.85,
                                              double epsilon = 1e-6);
Result<AlgorithmOutput<double>> RunPhpOn(const PreparedGraph& prepared,
                                         VertexId source,
                                         const SolverOptions& options,
                                         double damping = 0.8,
                                         double epsilon = 1e-6);
Result<AlgorithmOutput<uint32_t>> RunSswpOn(const PreparedGraph& prepared,
                                            VertexId source,
                                            const SolverOptions& options);

/// Runs `algorithm` (source used by the source-seeded algorithms) and
/// returns just the trace — the shape benches need. Dispatches through the
/// registry, so all six algorithms are covered.
Result<RunTrace> RunAlgorithmTrace(const CsrGraph& graph,
                                   AlgorithmId algorithm, VertexId source,
                                   const SolverOptions& options);

}  // namespace hytgraph

#endif  // HYTGRAPH_ALGORITHMS_RUNNER_H_
