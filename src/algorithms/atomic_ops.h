// Lock-free primitives used by the vertex programs: CAS-loop atomic min
// (value-selection algorithms) and atomic double add (accumulation
// algorithms). These are the host-side equivalents of the CUDA atomicMin /
// atomicAdd the paper's kernels rely on.

#ifndef HYTGRAPH_ALGORITHMS_ATOMIC_OPS_H_
#define HYTGRAPH_ALGORITHMS_ATOMIC_OPS_H_

#include <atomic>

namespace hytgraph {

/// Atomically sets *target = min(*target, value). Returns true if the
/// stored value decreased.
template <typename T>
bool AtomicMin(std::atomic<T>* target, T value) {
  T current = target->load(std::memory_order_relaxed);
  while (value < current) {
    if (target->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically adds `value` to *target. Returns the previous value.
inline double AtomicAddDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + value,
                                        std::memory_order_relaxed)) {
  }
  return current;
}

}  // namespace hytgraph

#endif  // HYTGRAPH_ALGORITHMS_ATOMIC_OPS_H_
