// The paper's four evaluation algorithms (BFS, SSSP, CC, PageRank) plus PHP
// (Penalized Hitting Probability, Zhang et al. "Maiter" — the other Δ-based
// algorithm Section VI-A names), expressed as push-mode vertex programs for
// the solver (see core/solver.h for the Program concept).
//
// Two families, exactly the paper's taxonomy (Section III):
//  * value-selection (BFS, SSSP, CC): values only improve (atomic min), the
//    frontier shrinks as values converge — the "increase then decrease"
//    active pattern;
//  * value-accumulation (PR, PHP): pending deltas accumulate until consumed
//    — the "monotone decrease" active pattern; these expose DeltaOf() for
//    Δ-driven contribution scheduling.
//
// The value-selection family additionally implements the pull-direction
// hooks (see RunPullKernel in engine/kernels.h): PullPotential(u) is the
// best value active vertex u could write to any out-neighbour this
// iteration, and SettledAt(v, bound) reports whether v's value is already
// at least as good as `bound` — once v settles at the iteration floor (the
// best potential over the whole frontier), no in-neighbour scan can improve
// it, so pull candidates early-exit. The floor is conservative (every
// actual offer is >= it), which keeps pull values bitwise identical to
// push. PR/PHP stay push-only: their BeginVertex *consumes* the pending
// delta, so gathering per in-edge would double-count mass.

#ifndef HYTGRAPH_ALGORITHMS_PROGRAMS_H_
#define HYTGRAPH_ALGORITHMS_PROGRAMS_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <vector>

#include "algorithms/atomic_ops.h"
#include "engine/frontier.h"
#include "graph/csr_graph.h"
#include "graph/graph_view.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hytgraph {

inline constexpr uint32_t kUnreachable =
    std::numeric_limits<uint32_t>::max();

/// Breadth-First Search: level of every vertex from a source.
class BfsProgram {
 public:
  using Value = uint32_t;
  static constexpr bool kNeedsWeights = false;
  static constexpr bool kHasDelta = false;
  // A vertex that reaches its floor (level+1 of the frontier) is settled
  // for good, so successive pull gathers shrink geometrically — the
  // solver's measured-cost feedback would mispredict them; pure Beamer
  // thresholds steer better.
  static constexpr bool kPullCandidatesLinger = false;
  static constexpr const char* kName = "BFS";

  BfsProgram(const GraphView& view, VertexId source)
      : source_(source), levels_(view.num_vertices()) {
    for (auto& level : levels_) {
      level.store(kUnreachable, std::memory_order_relaxed);
    }
    levels_[source_].store(0, std::memory_order_relaxed);
  }

  BfsProgram(const CsrGraph& graph, VertexId source)
      : BfsProgram(GraphView::Wrap(graph), source) {}

  void InitFrontier(Frontier* frontier) { frontier->Activate(source_); }

  struct VertexContext {
    uint32_t level;
  };

  bool BeginVertex(VertexId u, VertexContext* ctx) {
    ctx->level = levels_[u].load(std::memory_order_relaxed);
    return ctx->level != kUnreachable;
  }

  bool ProcessEdge(const VertexContext& ctx, VertexId /*u*/, VertexId v,
                   Weight /*w*/) {
    return AtomicMin(&levels_[v], ctx.level + 1);
  }

  /// --- Pull-direction hooks ---
  using PullBound = uint32_t;
  static PullBound WorstBound() { return kUnreachable; }
  static PullBound BetterBound(PullBound a, PullBound b) {
    return std::min(a, b);
  }
  /// Best level u could assign to an out-neighbour: level(u) + 1.
  PullBound PullPotential(VertexId u) const {
    const uint32_t level = levels_[u].load(std::memory_order_relaxed);
    return level == kUnreachable ? kUnreachable : level + 1;
  }
  bool SettledAt(VertexId v, PullBound bound) const {
    return levels_[v].load(std::memory_order_relaxed) <= bound;
  }

  /// Snapshot of the level array.
  std::vector<uint32_t> Values() const {
    std::vector<uint32_t> out(levels_.size());
    for (size_t i = 0; i < levels_.size(); ++i) {
      out[i] = levels_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  VertexId source_;
  std::vector<std::atomic<uint32_t>> levels_;
};

/// Single-Source Shortest Paths over non-negative integer weights.
class SsspProgram {
 public:
  using Value = uint32_t;
  static constexpr bool kNeedsWeights = true;
  static constexpr bool kHasDelta = false;
  // The settled floor moves every iteration, so unsettled candidates are
  // rescanned until their distance stops improving — gather cost stays
  // near the last measured one, making the solver's feedback term an
  // accurate predictor (without it, auto mode lingers in pull on
  // shrinking frontiers and loses to push).
  static constexpr bool kPullCandidatesLinger = true;
  static constexpr const char* kName = "SSSP";

  SsspProgram(const GraphView& view, VertexId source)
      : source_(source), view_(view), dists_(view.num_vertices()) {
    for (auto& dist : dists_) {
      dist.store(kUnreachable, std::memory_order_relaxed);
    }
    dists_[source_].store(0, std::memory_order_relaxed);
  }

  SsspProgram(const CsrGraph& graph, VertexId source)
      : SsspProgram(GraphView::Wrap(graph), source) {}

  void InitFrontier(Frontier* frontier) { frontier->Activate(source_); }

  struct VertexContext {
    uint32_t dist;
  };

  bool BeginVertex(VertexId u, VertexContext* ctx) {
    ctx->dist = dists_[u].load(std::memory_order_relaxed);
    return ctx->dist != kUnreachable;
  }

  bool ProcessEdge(const VertexContext& ctx, VertexId /*u*/, VertexId v,
                   Weight w) {
    return AtomicMin(&dists_[v], ctx.dist + w);
  }

  /// --- Pull-direction hooks ---
  using PullBound = uint32_t;
  static PullBound WorstBound() { return kUnreachable; }
  static PullBound BetterBound(PullBound a, PullBound b) {
    return std::min(a, b);
  }
  /// Best offer u can make to any out-neighbour: dist(u) + min_out_w(u).
  /// Every actual offer is dist(u) + w with w >= min_out_w(u), so the floor
  /// stays sound for any non-negative weighting while settling far more
  /// candidates than the plain dist(u) bound (which degrades toward "nobody
  /// settles" as weights grow — the weighted-SSSP analogue of BFS's
  /// level+1). The per-vertex minima are built lazily on the first pull
  /// iteration — an O(E) scan paid once per query, and only by queries
  /// that actually pull.
  PullBound PullPotential(VertexId u) const {
    const uint32_t dist = dists_[u].load(std::memory_order_relaxed);
    if (dist == kUnreachable) return kUnreachable;
    std::call_once(min_out_once_, [this] { BuildMinOutWeights(); });
    const uint32_t min_w = min_out_w_[u];
    if (min_w == kUnreachable) return kUnreachable;  // no out-edges: no offer
    const uint64_t offer = static_cast<uint64_t>(dist) + min_w;
    return offer >= kUnreachable ? kUnreachable
                                 : static_cast<uint32_t>(offer);
  }
  bool SettledAt(VertexId v, PullBound bound) const {
    return dists_[v].load(std::memory_order_relaxed) <= bound;
  }

  std::vector<uint32_t> Values() const {
    std::vector<uint32_t> out(dists_.size());
    for (size_t i = 0; i < dists_.size(); ++i) {
      out[i] = dists_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  void BuildMinOutWeights() const {
    min_out_w_.assign(dists_.size(), kUnreachable);
    ThreadPool::Default()->ParallelFor(
        min_out_w_.size(),
        [&](int /*shard*/, uint64_t begin, uint64_t end) {
          BlockRef lease;  // one per shard: ascending scan, out-of-core safe
          for (uint64_t v = begin; v < end; ++v) {
            uint32_t best = kUnreachable;
            view_.ForEachNeighborLeased(
                static_cast<VertexId>(v), &lease,
                [&](VertexId /*t*/, Weight w) { best = std::min(best, w); });
            min_out_w_[v] = best;
          }
        },
        /*min_grain=*/256);
  }

  VertexId source_;
  const GraphView view_;
  std::vector<std::atomic<uint32_t>> dists_;
  mutable std::once_flag min_out_once_;
  mutable std::vector<uint32_t> min_out_w_;
};

/// Connected Components by min-label propagation along out-edges. For
/// undirected (symmetrized) graphs this yields connected components; for
/// directed inputs it is the standard GPU-framework label propagation the
/// paper's CC numbers measure.
class CcProgram {
 public:
  using Value = uint32_t;
  static constexpr bool kNeedsWeights = false;
  static constexpr bool kHasDelta = false;
  // Labels settle permanently like BFS levels: gathers collapse after the
  // first pull iteration, so the measured-cost feedback stays off.
  static constexpr bool kPullCandidatesLinger = false;
  static constexpr const char* kName = "CC";

  explicit CcProgram(const GraphView& view) : labels_(view.num_vertices()) {
    for (size_t v = 0; v < labels_.size(); ++v) {
      labels_[v].store(static_cast<uint32_t>(v), std::memory_order_relaxed);
    }
  }

  explicit CcProgram(const CsrGraph& graph)
      : CcProgram(GraphView::Wrap(graph)) {}

  void InitFrontier(Frontier* frontier) {
    for (VertexId v = 0; v < static_cast<VertexId>(labels_.size()); ++v) {
      frontier->Activate(v);
    }
  }

  struct VertexContext {
    uint32_t label;
  };

  bool BeginVertex(VertexId u, VertexContext* ctx) {
    ctx->label = labels_[u].load(std::memory_order_relaxed);
    return true;
  }

  bool ProcessEdge(const VertexContext& ctx, VertexId /*u*/, VertexId v,
                   Weight /*w*/) {
    return AtomicMin(&labels_[v], ctx.label);
  }

  /// --- Pull-direction hooks ---
  using PullBound = uint32_t;
  static PullBound WorstBound() {
    return std::numeric_limits<uint32_t>::max();
  }
  static PullBound BetterBound(PullBound a, PullBound b) {
    return std::min(a, b);
  }
  PullBound PullPotential(VertexId u) const {
    return labels_[u].load(std::memory_order_relaxed);
  }
  bool SettledAt(VertexId v, PullBound bound) const {
    return labels_[v].load(std::memory_order_relaxed) <= bound;
  }

  std::vector<uint32_t> Values() const {
    std::vector<uint32_t> out(labels_.size());
    for (size_t i = 0; i < labels_.size(); ++i) {
      out[i] = labels_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::vector<std::atomic<uint32_t>> labels_;
};

struct PageRankOptions {
  double damping = 0.85;
  /// A vertex activates when its pending delta reaches this threshold;
  /// convergence = no pending delta above it.
  double epsilon = 1e-6;
};

/// Δ-based (accumulative) PageRank in the style of Maiter [41]: rank(v)
/// accumulates consumed deltas; processing v pushes damping*Δ/Do(v) to its
/// neighbours. Unnormalized formulation: stationary ranks satisfy
/// r(v) = (1-d) + d * sum_{u->v} r(u)/Do(u).
class PageRankProgram {
 public:
  using Value = double;
  static constexpr bool kNeedsWeights = false;
  static constexpr bool kHasDelta = true;
  static constexpr const char* kName = "PageRank";

  explicit PageRankProgram(const GraphView& view,
                           const PageRankOptions& options = {})
      : graph_(view),
        options_(options),
        ranks_(view.num_vertices(), 0.0),
        deltas_(view.num_vertices()) {
    for (auto& delta : deltas_) {
      delta.store(1.0 - options_.damping, std::memory_order_relaxed);
    }
  }

  /// Static-graph convenience: the graph must outlive the program.
  explicit PageRankProgram(const CsrGraph& graph,
                           const PageRankOptions& options = {})
      : PageRankProgram(GraphView::Wrap(graph), options) {}

  void InitFrontier(Frontier* frontier) {
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      frontier->Activate(v);
    }
  }

  struct VertexContext {
    double contribution;  // damping * delta / out_degree
  };

  bool BeginVertex(VertexId u, VertexContext* ctx) {
    const double delta = deltas_[u].exchange(0.0, std::memory_order_relaxed);
    if (delta == 0.0) return false;
    ranks_[u] += delta;  // consume: only this visit owns u's pending mass
    const EdgeId deg = graph_.out_degree(u);
    if (deg == 0) return false;  // dangling: mass retained, not pushed
    ctx->contribution = options_.damping * delta / static_cast<double>(deg);
    return true;
  }

  bool ProcessEdge(const VertexContext& ctx, VertexId /*u*/, VertexId v,
                   Weight /*w*/) {
    const double before = AtomicAddDouble(&deltas_[v], ctx.contribution);
    return before + ctx.contribution >= options_.epsilon;
  }

  double DeltaOf(VertexId v) const {
    return deltas_[v].load(std::memory_order_relaxed);
  }

  std::vector<double> Values() const {
    // Rank = consumed mass + still-pending mass (so totals are exact even
    // for sub-epsilon residuals).
    std::vector<double> out(ranks_.size());
    for (size_t i = 0; i < ranks_.size(); ++i) {
      out[i] = ranks_[i] + deltas_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  GraphView graph_;  // overlay-adjusted out-degrees for the rank split
  PageRankOptions options_;
  std::vector<double> ranks_;
  std::vector<std::atomic<double>> deltas_;
};

struct PhpOptions {
  double damping = 0.8;
  double epsilon = 1e-6;
};

/// Penalized Hitting Probability (Maiter [41]): proximity of every vertex to
/// a source. Δ-accumulative like PageRank, but propagation is weighted by
/// edge weight over the source vertex's total out-weight, and mass entering
/// the source is discarded (the "penalty").
class PhpProgram {
 public:
  using Value = double;
  static constexpr bool kNeedsWeights = true;
  static constexpr bool kHasDelta = true;
  static constexpr const char* kName = "PHP";

  PhpProgram(const GraphView& view, VertexId source,
             const PhpOptions& options = {})
      : options_(options),
        source_(source),
        values_(view.num_vertices(), 0.0),
        deltas_(view.num_vertices()),
        weight_sums_(view.num_vertices(), 0.0) {
    for (auto& delta : deltas_) delta.store(0.0, std::memory_order_relaxed);
    deltas_[source_].store(1.0, std::memory_order_relaxed);
    // Weight sums cover the mutated adjacency. An unweighted graph keeps
    // all-zero sums (no propagation), matching the historical weights(v)
    // behaviour.
    if (view.is_weighted()) {
      for (VertexId v = 0; v < view.num_vertices(); ++v) {
        double sum = 0;
        view.ForEachNeighbor(v, [&](VertexId /*dst*/, Weight w) { sum += w; });
        weight_sums_[v] = sum;
      }
    }
  }

  PhpProgram(const CsrGraph& graph, VertexId source,
             const PhpOptions& options = {})
      : PhpProgram(GraphView::Wrap(graph), source, options) {}

  void InitFrontier(Frontier* frontier) { frontier->Activate(source_); }

  struct VertexContext {
    double scaled_delta;  // damping * delta / weight_sum(u)
  };

  bool BeginVertex(VertexId u, VertexContext* ctx) {
    const double delta = deltas_[u].exchange(0.0, std::memory_order_relaxed);
    if (delta == 0.0) return false;
    values_[u] += delta;
    if (weight_sums_[u] == 0.0) return false;
    ctx->scaled_delta = options_.damping * delta / weight_sums_[u];
    return true;
  }

  bool ProcessEdge(const VertexContext& ctx, VertexId /*u*/, VertexId v,
                   Weight w) {
    if (v == source_) return false;  // penalty: discard mass entering source
    const double msg = ctx.scaled_delta * static_cast<double>(w);
    const double before = AtomicAddDouble(&deltas_[v], msg);
    return before + msg >= options_.epsilon;
  }

  double DeltaOf(VertexId v) const {
    return deltas_[v].load(std::memory_order_relaxed);
  }

  std::vector<double> Values() const {
    std::vector<double> out(values_.size());
    for (size_t i = 0; i < values_.size(); ++i) {
      out[i] = values_[i] + deltas_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  PhpOptions options_;
  VertexId source_;
  std::vector<double> values_;
  std::vector<std::atomic<double>> deltas_;
  std::vector<double> weight_sums_;
};

/// Single-Source Widest Path (a.k.a. maximum-capacity path): the value of v
/// is the largest bottleneck capacity over all paths source -> v, i.e. a
/// max-min semiring. A third member of the value-selection family with the
/// *opposite* monotonicity of SSSP/BFS — values only grow — exercising the
/// engines under an atomic-max program.
class SswpProgram {
 public:
  using Value = uint32_t;
  static constexpr bool kNeedsWeights = true;
  static constexpr bool kHasDelta = false;
  // Same slow-settling structure as SSSP (the width floor keeps moving),
  // so the measured-cost feedback applies.
  static constexpr bool kPullCandidatesLinger = true;
  static constexpr const char* kName = "SSWP";

  SswpProgram(const GraphView& view, VertexId source)
      : source_(source), widths_(view.num_vertices()) {
    for (auto& width : widths_) {
      width.store(0, std::memory_order_relaxed);
    }
    widths_[source_].store(std::numeric_limits<uint32_t>::max(),
                           std::memory_order_relaxed);
  }

  SswpProgram(const CsrGraph& graph, VertexId source)
      : SswpProgram(GraphView::Wrap(graph), source) {}

  void InitFrontier(Frontier* frontier) { frontier->Activate(source_); }

  struct VertexContext {
    uint32_t width;
  };

  bool BeginVertex(VertexId u, VertexContext* ctx) {
    ctx->width = widths_[u].load(std::memory_order_relaxed);
    return ctx->width != 0;
  }

  bool ProcessEdge(const VertexContext& ctx, VertexId /*u*/, VertexId v,
                   Weight w) {
    const uint32_t candidate = std::min(ctx.width, static_cast<uint32_t>(w));
    // Atomic max via CAS loop (mirror of AtomicMin).
    uint32_t current = widths_[v].load(std::memory_order_relaxed);
    while (candidate > current) {
      if (widths_[v].compare_exchange_weak(current, candidate,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// --- Pull-direction hooks (max-min: wider is better) ---
  using PullBound = uint32_t;
  static PullBound WorstBound() { return 0; }
  static PullBound BetterBound(PullBound a, PullBound b) {
    return std::max(a, b);
  }
  /// width(u) is an upper bound on every offer min(width(u), w).
  PullBound PullPotential(VertexId u) const {
    return widths_[u].load(std::memory_order_relaxed);
  }
  bool SettledAt(VertexId v, PullBound bound) const {
    return widths_[v].load(std::memory_order_relaxed) >= bound;
  }

  std::vector<uint32_t> Values() const {
    std::vector<uint32_t> out(widths_.size());
    for (size_t i = 0; i < widths_.size(); ++i) {
      out[i] = widths_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  VertexId source_;
  std::vector<std::atomic<uint32_t>> widths_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_ALGORITHMS_PROGRAMS_H_
