// Minimal leveled logging plus CHECK macros. Logging is intentionally tiny:
// benches and examples print their own tables; the library itself logs only
// warnings and above by default.

#ifndef HYTGRAPH_UTIL_LOGGING_H_
#define HYTGRAPH_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace hytgraph {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line via operator<< and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process in the destructor. Used by the
/// CHECK family for unrecoverable internal invariant violations (anything a
/// caller could plausibly trigger returns Status instead).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define HYT_LOG(level)                                                \
  ::hytgraph::internal::LogMessage(::hytgraph::LogLevel::k##level,    \
                                   __FILE__, __LINE__)

/// Aborts with a message when an internal invariant is violated.
#define HYT_CHECK(condition)                                          \
  if (!(condition))                                                   \
  ::hytgraph::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define HYT_CHECK_EQ(a, b) HYT_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define HYT_CHECK_NE(a, b) HYT_CHECK((a) != (b))
#define HYT_CHECK_LT(a, b) HYT_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define HYT_CHECK_LE(a, b) HYT_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define HYT_CHECK_GT(a, b) HYT_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define HYT_CHECK_GE(a, b) HYT_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_LOGGING_H_
