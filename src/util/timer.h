// Wall-clock timing for the measured (as opposed to modelled) parts of the
// system: CPU compaction, host kernel execution, end-to-end bench runs.

#ifndef HYTGRAPH_UTIL_TIMER_H_
#define HYTGRAPH_UTIL_TIMER_H_

#include <chrono>

namespace hytgraph {

/// Monotonic stopwatch. Starts on construction; Restart() resets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals. Used for
/// per-phase breakdowns (compaction vs transfer vs compute).
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_ += timer_.Seconds(); }
  double TotalSeconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_TIMER_H_
