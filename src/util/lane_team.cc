#include "util/lane_team.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace hytgraph {

LaneTeam::LaneTeam(int num_lanes) : num_lanes_(num_lanes) {
  HYT_CHECK(num_lanes >= 1) << "LaneTeam needs at least one lane";
  if (num_lanes == 1) return;  // 1-lane teams run inline in Run()
  threads_.reserve(num_lanes);
  for (int lane = 0; lane < num_lanes; ++lane) {
    threads_.emplace_back([this, lane] { LaneLoop(lane); });
  }
}

LaneTeam::~LaneTeam() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void LaneTeam::LaneLoop(int lane) {
  // Lane threads count as pool workers: kernel ParallelFor inside a lane
  // runs serially instead of contending for the shared pool.
  ThreadPool::MarkWorkerThread();
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (fn_ != nullptr && epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
      fn = fn_;
    }
    (*fn)(lane);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void LaneTeam::Run(const std::function<void(int lane)>& fn) {
  if (num_lanes_ == 1) {
    // Inline on the caller: a 1-lane team adds no threads and no signaling,
    // keeping the sequential reference path free of team machinery.
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    remaining_ = num_lanes_;
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    fn_ = nullptr;
  }
}

}  // namespace hytgraph
