#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"
#include "util/math_util.h"

namespace hytgraph {

namespace {
/// Set for the lifetime of every pool worker thread; nested ParallelFor
/// calls detect it and degrade to a serial loop (a worker blocking on a
/// nested submission would deadlock the batch it is part of).
thread_local bool tls_in_pool_worker = false;
}  // namespace

struct ThreadPool::TaskBatch {
  const std::function<void(int, uint64_t, uint64_t)>* fn = nullptr;
  uint64_t n = 0;
  uint64_t chunk = 0;
  int num_shards = 0;
  std::atomic<int> remaining{0};
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop(int worker_id) {
  tls_in_pool_worker = true;
  uint64_t seen_epoch = 0;
  while (true) {
    TaskBatch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (batch_ != nullptr && epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
      batch = batch_;
    }
    if (worker_id < batch->num_shards) {
      const uint64_t begin = static_cast<uint64_t>(worker_id) * batch->chunk;
      const uint64_t end = std::min(batch->n, begin + batch->chunk);
      if (begin < end) (*batch->fn)(worker_id, begin, end);
    }
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    uint64_t n,
    const std::function<void(int shard, uint64_t begin, uint64_t end)>& fn,
    uint64_t min_grain) {
  if (n == 0) return;
  const int workers = num_threads();
  if (tls_in_pool_worker || n <= min_grain || workers <= 1) {
    fn(0, 0, n);
    return;
  }
  // One batch in flight at a time: concurrent top-level callers (e.g. two
  // Engine queries on user threads) queue here rather than clobbering
  // batch_.
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  TaskBatch batch;
  batch.fn = &fn;
  batch.n = n;
  batch.num_shards =
      static_cast<int>(std::min<uint64_t>(workers, CeilDiv(n, min_grain)));
  batch.chunk = CeilDiv(n, batch.num_shards);
  batch.remaining.store(workers);  // every worker decrements, shard or not
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch.remaining.load() == 0; });
    batch_ = nullptr;
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

bool ThreadPool::InWorkerThread() { return tls_in_pool_worker; }

void ThreadPool::MarkWorkerThread() { tls_in_pool_worker = true; }

}  // namespace hytgraph
