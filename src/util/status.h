// Status and Result<T>: exception-free error handling in the style of
// Apache Arrow / RocksDB. Every fallible public API in this library returns
// a Status (no useful value) or a Result<T> (value or error).

#ifndef HYTGRAPH_UTIL_STATUS_H_
#define HYTGRAPH_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace hytgraph {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,       // simulated device memory exhausted
  kIOError = 3,           // graph file load/store failures
  kNotFound = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,   // admission queue full (serving backpressure)
  kDeadlineExceeded = 9,    // request shed past its deadline (serving)
  kUnavailable = 10,        // transient failure (IO fault, retry exhausted,
                            // overload shed) — safe to retry
  kAborted = 11,            // request abandoned mid-flight (e.g. a retry
                            // raced shutdown); not retried here
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status holds either success (the common, allocation-free case) or an
/// error code plus message. Cheap to copy when OK; error state is heap
/// allocated (same layout trick as RocksDB/Arrow: OK is a null pointer).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const {
    return code() == StatusCode::kUnimplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }

  /// True for transient errors a caller may retry without changing the
  /// request: kUnavailable (the failure may heal) and kResourceExhausted
  /// (backpressure — capacity may free up). Deadline and precondition
  /// failures are terminal for the request that hit them.
  bool IsRetryable() const {
    return code() == StatusCode::kUnavailable ||
           code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;  // null == OK
};

/// Result<T> is either a value of type T or an error Status (never an OK
/// status). Analogous to arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors. Precondition: ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::get<T>(std::move(repr_)) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK status to the caller, RocksDB/Arrow style:
///   HYT_RETURN_NOT_OK(DoThing());
#define HYT_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::hytgraph::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Assigns the value of a Result to `lhs`, or propagates the error:
///   HYT_ASSIGN_OR_RETURN(auto graph, LoadGraph(path));
#define HYT_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

#define HYT_ASSIGN_OR_RETURN(lhs, rexpr)                                      \
  HYT_ASSIGN_OR_RETURN_IMPL(HYT_CONCAT_(_hyt_result_, __LINE__), lhs, rexpr)

#define HYT_CONCAT_INNER_(a, b) a##b
#define HYT_CONCAT_(a, b) HYT_CONCAT_INNER_(a, b)

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_STATUS_H_
