// Deterministic fault injection: a process-wide registry of named fault
// points wired into the hot paths of every fallible subsystem (block
// reads, checksum verification, prefetch loads, ingest drains, background
// folds, serving dispatch). Tests arm a point with a seeded schedule and
// the production code path fails exactly where a real IO error or worker
// crash would — same status codes, same cleanup obligations — so the
// retry/backoff/degradation machinery is provable without flaky real-IO
// tricks.
//
// Cost when disarmed: one relaxed atomic load per hit (the registry lookup
// happens once per call site via a static local). bench_query_throughput
// asserts the disarmed check stays under 1% of per-request serving cost.
//
// Schedules (all deterministic under a fixed seed and hit order):
//  * FailNth(n)              — the n-th armed hit fails, every other passes.
//  * FailCount(n)            — the first n armed hits fail, then the point
//                              heals (fail-N-then-heal).
//  * FailWithProbability(p)  — each armed hit fails with probability p,
//                              drawn from a seeded per-point PRNG.
//
// Hits are only counted while armed, keeping the disarmed path branch-free
// past the atomic load. Arming resets the schedule-local hit index, so a
// schedule always means "counted from this Arm call".

#ifndef HYTGRAPH_UTIL_FAULT_INJECTION_H_
#define HYTGRAPH_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace hytgraph {

/// Canonical fault-point names. Points are created lazily (first Check or
/// first Arm), so arming by name before the subsystem ever ran is fine.
namespace faults {
inline constexpr char kStorageBlockRead[] = "storage.block_read";
inline constexpr char kStorageChecksum[] = "storage.checksum";
inline constexpr char kIngestDrain[] = "ingest.drain";
inline constexpr char kCompactorFold[] = "compactor.fold";
inline constexpr char kPrefetchLoad[] = "prefetch.load";
inline constexpr char kServingDispatch[] = "serving.dispatch";
}  // namespace faults

struct FaultSchedule {
  enum class Kind { kNth, kCount, kProbability };

  Kind kind = Kind::kCount;
  /// kNth: the 1-based armed-hit index that fails.
  uint64_t nth = 0;
  /// kCount: how many armed hits fail before the point heals.
  uint64_t fail_count = 0;
  /// kProbability: per-hit failure probability in [0, 1].
  double probability = 0.0;
  /// Seeds the per-point PRNG (kProbability only).
  uint64_t seed = 0;
  /// Status code the injected failure carries.
  StatusCode code = StatusCode::kUnavailable;

  static FaultSchedule FailNth(uint64_t nth,
                               StatusCode code = StatusCode::kUnavailable) {
    FaultSchedule s;
    s.kind = Kind::kNth;
    s.nth = nth;
    s.code = code;
    return s;
  }
  /// Fail the first `count` armed hits, then heal.
  static FaultSchedule FailCount(
      uint64_t count, StatusCode code = StatusCode::kUnavailable) {
    FaultSchedule s;
    s.kind = Kind::kCount;
    s.fail_count = count;
    s.code = code;
    return s;
  }
  static FaultSchedule FailWithProbability(
      double probability, uint64_t seed,
      StatusCode code = StatusCode::kUnavailable) {
    FaultSchedule s;
    s.kind = Kind::kProbability;
    s.probability = probability;
    s.seed = seed;
    s.code = code;
    return s;
  }
  /// Every armed hit fails until Disarm — the "permanently broken
  /// dependency" schedule degraded-mode tests arm.
  static FaultSchedule FailAlways(
      StatusCode code = StatusCode::kUnavailable) {
    FaultSchedule s;
    s.kind = Kind::kProbability;
    s.probability = 1.0;
    s.code = code;
    return s;
  }
};

class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string& name() const { return name_; }

  /// The disarmed fast path: a single relaxed load.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates the armed schedule for one hit. Returns OK (pass) or the
  /// injected error. Callers go through HYT_FAULT_POINT, which skips this
  /// entirely while disarmed.
  Status Check();

  void Arm(const FaultSchedule& schedule);
  void Disarm();

  /// Armed hits observed since construction (monotone across Arm cycles).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Injected failures since construction.
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> trips_{0};

  std::mutex mu_;
  FaultSchedule schedule_;        // guarded by mu_
  uint64_t hits_since_arm_ = 0;   // guarded by mu_
  uint64_t trips_since_arm_ = 0;  // guarded by mu_
  std::mt19937_64 rng_;           // guarded by mu_
};

/// Process-wide registry. Points live forever once created (stable
/// addresses — call sites cache a reference in a function-local static).
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultPoint& GetOrCreate(std::string_view name);
  /// Null when the point was never created.
  FaultPoint* Find(std::string_view name);

  void Arm(std::string_view name, const FaultSchedule& schedule) {
    GetOrCreate(name).Arm(schedule);
  }
  void Disarm(std::string_view name) { GetOrCreate(name).Disarm(); }
  /// Disarms every registered point (test teardown).
  void DisarmAll();

  std::vector<std::string> Names() const;
  size_t ArmedCount() const;

 private:
  FaultRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<FaultPoint>> points_;
};

/// One fault-point hit. Yields a Status: OK while disarmed (one relaxed
/// load past the first call's registry lookup) or when the armed schedule
/// passes this hit; the injected error otherwise. Use with the usual
/// propagation macros:
///
///   HYT_RETURN_NOT_OK(HYT_FAULT_POINT(faults::kStorageBlockRead));
#define HYT_FAULT_POINT(point_name)                                   \
  ([]() -> ::hytgraph::Status {                                       \
    static ::hytgraph::FaultPoint& _hyt_fault_point =                 \
        ::hytgraph::FaultRegistry::Global().GetOrCreate(point_name);  \
    if (!_hyt_fault_point.armed()) return ::hytgraph::Status::OK();   \
    return _hyt_fault_point.Check();                                  \
  }())

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_FAULT_INJECTION_H_
