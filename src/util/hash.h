// Checksum64: a fast 64-bit non-cryptographic content hash in the xxhash
// family (wide multiply-and-rotate lane mixing over 8-byte stripes, length
// and seed folded in, strong final avalanche). Used for per-block spill
// checksums in the edge-block store: fast enough to hash every block at
// spill and verify on every load, strong enough that a flipped byte in a
// spilled block is detected with 2^-64 false-negative odds.

#ifndef HYTGRAPH_UTIL_HASH_H_
#define HYTGRAPH_UTIL_HASH_H_

#include <cstdint>
#include <cstring>

namespace hytgraph {

namespace hash_internal {

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t lane) {
  acc ^= Round(0, lane);
  return acc * kPrime1 + kPrime4;
}

inline uint64_t Load64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Load32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace hash_internal

/// 64-bit content checksum of `len` bytes at `data`, mixed with `seed`.
/// Deterministic across runs and platforms (little-endian loads via
/// memcpy); empty input hashes to a seed-dependent constant.
inline uint64_t Checksum64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace hash_internal;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_HASH_H_
