// Formatting helpers for the bench/table output layer.

#ifndef HYTGRAPH_UTIL_STRING_UTIL_H_
#define HYTGRAPH_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hytgraph {

/// "1.5 GiB", "32.0 MiB", "512 B" — binary units.
std::string HumanBytes(uint64_t bytes);

/// "12.3 GB/s" — decimal units, matching PCIe marketing convention.
std::string HumanBandwidth(double bytes_per_sec);

/// Fixed-precision double, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int precision);

/// Joins parts with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// Simple fixed-width ASCII table writer used by the bench binaries so every
/// reproduced paper table prints in a consistent layout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  /// Renders the table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_STRING_UTIL_H_
