// Deterministic, seedable pseudo-random number generation. All randomized
// components of the library (RMAT generation, weight assignment, sampling)
// draw from these generators so that every experiment is reproducible
// bit-for-bit from its seed.

#ifndef HYTGRAPH_UTIL_RANDOM_H_
#define HYTGRAPH_UTIL_RANDOM_H_

#include <cstdint>

namespace hytgraph {

/// SplitMix64: used to expand a user seed into stream seeds. Passes BigCrush;
/// see Steele et al., "Fast splittable pseudorandom number generators".
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_RANDOM_H_
