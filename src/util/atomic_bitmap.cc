#include "util/atomic_bitmap.h"

#include <bit>

#include "util/logging.h"
#include "util/math_util.h"

namespace hytgraph {

AtomicBitmap::AtomicBitmap(uint64_t size) { Reset(size); }

void AtomicBitmap::Reset(uint64_t size) {
  size_ = size;
  words_ = std::vector<std::atomic<uint64_t>>(CeilDiv(size, kBitsPerWord));
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

bool AtomicBitmap::TestAndSet(uint64_t i) {
  HYT_CHECK_LT(i, size_);
  const uint64_t mask = 1ULL << (i % kBitsPerWord);
  std::atomic<uint64_t>& word = words_[i / kBitsPerWord];
  // Cheap read first: most repeated activations hit an already-set bit and
  // skip the RMW entirely.
  if (word.load(std::memory_order_relaxed) & mask) return false;
  return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
}

void AtomicBitmap::Clear(uint64_t i) {
  HYT_CHECK_LT(i, size_);
  const uint64_t mask = 1ULL << (i % kBitsPerWord);
  words_[i / kBitsPerWord].fetch_and(~mask, std::memory_order_relaxed);
}

bool AtomicBitmap::TestAndClear(uint64_t i) {
  HYT_CHECK_LT(i, size_);
  const uint64_t mask = 1ULL << (i % kBitsPerWord);
  std::atomic<uint64_t>& word = words_[i / kBitsPerWord];
  if ((word.load(std::memory_order_relaxed) & mask) == 0) return false;
  return (word.fetch_and(~mask, std::memory_order_relaxed) & mask) != 0;
}

bool AtomicBitmap::Test(uint64_t i) const {
  HYT_CHECK_LT(i, size_);
  return (words_[i / kBitsPerWord].load(std::memory_order_relaxed) >>
          (i % kBitsPerWord)) &
         1ULL;
}

void AtomicBitmap::ClearAll() {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

uint64_t AtomicBitmap::Count() const { return CountRange(0, size_); }

uint64_t AtomicBitmap::CountRange(uint64_t begin, uint64_t end) const {
  if (begin >= end) return 0;
  HYT_CHECK_LE(end, size_);
  const uint64_t first_word = begin / kBitsPerWord;
  const uint64_t last_word = (end - 1) / kBitsPerWord;
  uint64_t count = 0;
  for (uint64_t w = first_word; w <= last_word; ++w) {
    uint64_t bits = words_[w].load(std::memory_order_relaxed);
    if (w == first_word) {
      bits &= ~0ULL << (begin % kBitsPerWord);
    }
    if (w == last_word && (end % kBitsPerWord) != 0) {
      bits &= (1ULL << (end % kBitsPerWord)) - 1;
    }
    count += std::popcount(bits);
  }
  return count;
}

void AtomicBitmap::CollectSetBits(uint64_t begin, uint64_t end,
                                  std::vector<uint32_t>* out) const {
  if (begin >= end) return;
  HYT_CHECK_LE(end, size_);
  const uint64_t first_word = begin / kBitsPerWord;
  const uint64_t last_word = (end - 1) / kBitsPerWord;
  for (uint64_t w = first_word; w <= last_word; ++w) {
    uint64_t bits = words_[w].load(std::memory_order_relaxed);
    if (w == first_word) {
      bits &= ~0ULL << (begin % kBitsPerWord);
    }
    if (w == last_word && (end % kBitsPerWord) != 0) {
      bits &= (1ULL << (end % kBitsPerWord)) - 1;
    }
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      out->push_back(static_cast<uint32_t>(w * kBitsPerWord + bit));
      bits &= bits - 1;
    }
  }
}

}  // namespace hytgraph
