#include "util/status.h"

namespace hytgraph {

namespace {
const std::string kEmptyString;  // NOLINT: returned by reference for OK
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfMemory:
      return "Out of memory";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ == nullptr ? kEmptyString : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(state_->code);
  if (!state_->msg.empty()) {
    result += ": ";
    result += state_->msg;
  }
  return result;
}

}  // namespace hytgraph
