#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace hytgraph {

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string HumanBandwidth(double bytes_per_sec) {
  constexpr const char* kUnits[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  double value = bytes_per_sec;
  int unit = 0;
  while (value >= 1000.0 && unit < 4) {
    value /= 1000.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << (c == 0 ? "| " : " ");
      out << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < widths.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::printf("%s", ToString().c_str()); }

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace hytgraph
