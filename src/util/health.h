// Subsystem health tracking for worker supervision. Supervised workers
// (ingest drain, background fold) and the storage layer report per-cycle
// success/failure; Engine::Health() snapshots the tracker so serving
// infrastructure can observe a degraded engine (compactor parked in
// retry-backoff, ingest requeueing a poisoned batch, storage returning
// kUnavailable) without scraping logs. A subsystem is degraded while its
// consecutive-failure count is nonzero and heals on the first success.

#ifndef HYTGRAPH_UTIL_HEALTH_H_
#define HYTGRAPH_UTIL_HEALTH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hytgraph {

enum class HealthState {
  kHealthy = 0,
  kDegraded = 1,
};

inline const char* HealthStateToString(HealthState state) {
  return state == HealthState::kHealthy ? "healthy" : "degraded";
}

struct SubsystemHealth {
  std::string subsystem;
  HealthState state = HealthState::kHealthy;
  /// Failures since the last success (0 while healthy) — the supervisor's
  /// backoff ladder is keyed off this.
  uint64_t consecutive_failures = 0;
  /// Lifetime failures (monotone; survives healing).
  uint64_t total_failures = 0;
  /// The most recent failure's description; kept after healing so the last
  /// incident stays observable.
  std::string last_failure_reason;
};

/// Point-in-time health of an Engine: overall state is degraded when any
/// subsystem is.
struct EngineHealth {
  HealthState state = HealthState::kHealthy;
  /// Sorted by subsystem name.
  std::vector<SubsystemHealth> subsystems;

  bool healthy() const { return state == HealthState::kHealthy; }
  const SubsystemHealth* Find(std::string_view subsystem) const {
    for (const SubsystemHealth& s : subsystems) {
      if (s.subsystem == subsystem) return &s;
    }
    return nullptr;
  }
};

/// Thread-safe failure/success accounting, one entry per subsystem name.
/// Reporting is cheap (one small mutex) and happens once per worker cycle
/// or failed query, never per edge.
class HealthTracker {
 public:
  void ReportFailure(std::string_view subsystem, std::string reason) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[std::string(subsystem)];
    ++entry.consecutive_failures;
    ++entry.total_failures;
    entry.last_failure_reason = std::move(reason);
  }

  void ReportSuccess(std::string_view subsystem) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[std::string(subsystem)].consecutive_failures = 0;
  }

  uint64_t ConsecutiveFailures(std::string_view subsystem) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(std::string(subsystem));
    return it == entries_.end() ? 0 : it->second.consecutive_failures;
  }

  EngineHealth Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    EngineHealth health;
    for (const auto& [name, entry] : entries_) {
      SubsystemHealth s;
      s.subsystem = name;
      s.consecutive_failures = entry.consecutive_failures;
      s.total_failures = entry.total_failures;
      s.last_failure_reason = entry.last_failure_reason;
      s.state = entry.consecutive_failures > 0 ? HealthState::kDegraded
                                               : HealthState::kHealthy;
      if (s.state == HealthState::kDegraded) {
        health.state = HealthState::kDegraded;
      }
      health.subsystems.push_back(std::move(s));
    }
    return health;
  }

 private:
  struct Entry {
    uint64_t consecutive_failures = 0;
    uint64_t total_failures = 0;
    std::string last_failure_reason;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_HEALTH_H_
