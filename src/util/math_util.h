// Small integer math helpers used throughout the transfer cost formulas.

#ifndef HYTGRAPH_UTIL_MATH_UTIL_H_
#define HYTGRAPH_UTIL_MATH_UTIL_H_

#include <cstdint>

namespace hytgraph {

/// ceil(a / b) for non-negative integers; b must be > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr uint64_t RoundUp(uint64_t a, uint64_t b) { return CeilDiv(a, b) * b; }

/// Rounds `a` down to a multiple of `b` (b > 0).
constexpr uint64_t RoundDown(uint64_t a, uint64_t b) { return a / b * b; }

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_MATH_UTIL_H_
