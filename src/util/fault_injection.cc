#include "util/fault_injection.h"

namespace hytgraph {

Status FaultPoint::Check() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++hits_since_arm_;

  bool trip = false;
  switch (schedule_.kind) {
    case FaultSchedule::Kind::kNth:
      trip = hits_since_arm_ == schedule_.nth;
      break;
    case FaultSchedule::Kind::kCount:
      trip = trips_since_arm_ < schedule_.fail_count;
      break;
    case FaultSchedule::Kind::kProbability:
      if (schedule_.probability >= 1.0) {
        trip = true;
      } else if (schedule_.probability > 0.0) {
        trip = std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
               schedule_.probability;
      }
      break;
  }
  if (!trip) return Status::OK();
  ++trips_since_arm_;
  trips_.fetch_add(1, std::memory_order_relaxed);
  return Status(schedule_.code,
                "injected fault at " + name_ + " (hit " +
                    std::to_string(hits_since_arm_) + " since arm)");
}

void FaultPoint::Arm(const FaultSchedule& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = schedule;
  hits_since_arm_ = 0;
  trips_since_arm_ = 0;
  rng_.seed(schedule.seed);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();  // never destroyed
  return *registry;
}

FaultPoint& FaultRegistry::GetOrCreate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(name));
  if (it == points_.end()) {
    std::string key(name);
    it = points_.emplace(key, std::make_unique<FaultPoint>(key)).first;
  }
  return *it->second;
}

FaultPoint* FaultRegistry::Find(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(name));
  return it == points_.end() ? nullptr : it->second.get();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) point->Disarm();
}

std::vector<std::string> FaultRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

size_t FaultRegistry::ArmedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t armed = 0;
  for (const auto& [name, point] : points_) {
    if (point->armed()) ++armed;
  }
  return armed;
}

}  // namespace hytgraph
