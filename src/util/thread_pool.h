// A fixed-size thread pool with a blocked-range ParallelFor. The pool backs
// the host-side "GPU kernel" execution, the CPU compaction engine, and the
// Engine's batched query fan-out.
//
// Determinism note: ParallelFor uses static chunking (each worker owns a
// fixed contiguous range), so per-shard partial results can be combined in
// shard order to obtain deterministic reductions.
//
// Reentrancy: ParallelFor may be called from inside a pool worker (e.g. a
// batched query executing its solver kernels); the nested call degrades to
// a serial loop on the calling worker instead of deadlocking on a nested
// submission. Concurrent top-level callers serialize their batches.

#ifndef HYTGRAPH_UTIL_THREAD_POOL_H_
#define HYTGRAPH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hytgraph {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means
  /// hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(shard, begin, end) on every shard covering [0, n) with static
  /// contiguous chunking, and blocks until all shards complete. `shard` is in
  /// [0, num_shards) where num_shards <= num_threads(). Small `n` degrades to
  /// a serial call on the calling thread.
  void ParallelFor(uint64_t n,
                   const std::function<void(int shard, uint64_t begin,
                                            uint64_t end)>& fn,
                   uint64_t min_grain = 1024);

  /// Process-wide default pool (created on first use with all cores).
  static ThreadPool* Default();

  /// True when the calling thread is a pool worker (of any pool). Nested
  /// ParallelFor calls from workers run serially.
  static bool InWorkerThread();

  /// Marks the calling thread as a pool worker without it belonging to any
  /// pool. Solver lane threads (core/lane_team.h) call this at entry so
  /// kernel-level ParallelFor degrades to a serial loop inside each lane —
  /// lanes are the parallel unit; nesting pool batches under them would
  /// serialize every lane on the pool's submission lock.
  static void MarkWorkerThread();

 private:
  struct TaskBatch;

  void WorkerLoop(int worker_id);

  std::vector<std::thread> threads_;
  std::mutex submit_mu_;  // serializes top-level ParallelFor submissions
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  TaskBatch* batch_ = nullptr;  // current batch, guarded by mu_
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_THREAD_POOL_H_
