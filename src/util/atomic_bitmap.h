// A fixed-size concurrent bitmap. Used for frontiers ("bitmap-directed
// frontier optimization", Section VI-C of the paper) and for page residency
// tracking in the unified-memory engine.

#ifndef HYTGRAPH_UTIL_ATOMIC_BITMAP_H_
#define HYTGRAPH_UTIL_ATOMIC_BITMAP_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace hytgraph {

class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  /// Creates a bitmap of `size` bits, all clear.
  explicit AtomicBitmap(uint64_t size);

  /// Resizes and clears all bits.
  void Reset(uint64_t size);

  uint64_t size() const { return size_; }

  /// Atomically sets bit i. Returns true if this call changed it 0 -> 1.
  /// Reduces atomic contention by testing before the RMW (the paper's
  /// bitmap-directed frontier trick).
  bool TestAndSet(uint64_t i);

  /// Atomically clears bit i.
  void Clear(uint64_t i);

  /// Atomically clears bit i. Returns true if this call changed it 1 -> 0
  /// (the mirror of TestAndSet — callers maintaining an external population
  /// count need to know whether the bit was actually set).
  bool TestAndClear(uint64_t i);

  bool Test(uint64_t i) const;

  /// Clears all bits (not thread safe vs concurrent setters).
  void ClearAll();

  /// Population count over the whole bitmap (not synchronized; call after
  /// the producing phase has completed).
  uint64_t Count() const;

  /// Popcount over bit range [begin, end).
  uint64_t CountRange(uint64_t begin, uint64_t end) const;

  /// Appends the indices of all set bits in [begin, end) to `out`.
  void CollectSetBits(uint64_t begin, uint64_t end,
                      std::vector<uint32_t>* out) const;

  /// The backing words, for dense whole-bitmap iteration (pull-mode kernels
  /// scan set bits without materializing an index list). Bit i lives at
  /// words()[i / kBitsPerWord] bit (i % kBitsPerWord); bits at size() and
  /// beyond in the last word are always clear.
  std::span<const std::atomic<uint64_t>> words() const {
    return {words_.data(), words_.size()};
  }

  static constexpr uint64_t kBitsPerWord = 64;

 private:

  uint64_t size_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_ATOMIC_BITMAP_H_
