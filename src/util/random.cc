#include "util/random.h"

namespace hytgraph {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& s : s_) s = seeder.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBounded(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace hytgraph
