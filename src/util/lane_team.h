// A fixed team of lane threads for the solver's parallel partition
// execution. A LaneTeam is created per query (its lifetime is the query's
// lifetime, matching the lanes' partition ownership), and Run(fn) executes
// fn(lane) on every lane concurrently, returning only when all lanes have
// finished — the iteration barrier.
//
// Every lane thread marks itself as a pool worker (ThreadPool::
// MarkWorkerThread) so kernel-level ParallelFor degrades to a serial loop
// inside the lane: lanes are the unit of parallelism, and nesting pool
// batches under them would serialize all lanes on the pool's submission
// lock.
//
// Determinism: Run dispatches by lane index with static assignment; a lane
// executes its phases serially and in the same order every run, so at a
// fixed lane count the execution is deterministic up to the atomics the
// phase function itself uses.

#ifndef HYTGRAPH_UTIL_LANE_TEAM_H_
#define HYTGRAPH_UTIL_LANE_TEAM_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hytgraph {

class LaneTeam {
 public:
  /// Spawns `num_lanes` lane threads (none for a 1-lane team, which runs
  /// inline on the caller in Run). num_lanes must be >= 1.
  explicit LaneTeam(int num_lanes);
  ~LaneTeam();

  LaneTeam(const LaneTeam&) = delete;
  LaneTeam& operator=(const LaneTeam&) = delete;

  int num_lanes() const { return num_lanes_; }

  /// Runs fn(lane) for every lane in [0, num_lanes) concurrently and blocks
  /// until all lanes return (the barrier). Must not be called reentrantly
  /// from inside a phase function.
  void Run(const std::function<void(int lane)>& fn);

 private:
  void LaneLoop(int lane);

  const int num_lanes_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int lane)>* fn_ = nullptr;  // guarded by mu_
  uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_UTIL_LANE_TEAM_H_
