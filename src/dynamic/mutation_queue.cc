#include "dynamic/mutation_queue.h"

#include <utility>

namespace hytgraph {

MutationQueue::~MutationQueue() {
  Node* node = head_.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    Node* next = node->next;
    delete node;
    node = next;
  }
}

void MutationQueue::Push(MutationBatch batch) {
  Node* node = new Node{std::move(batch), nullptr};
  node->next = head_.load(std::memory_order_relaxed);
  // Release on success: the consumer's acquire exchange sees the batch's
  // contents. On failure the CAS reloads head_ into node->next.
  while (!head_.compare_exchange_weak(node->next, node,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  pushed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<MutationBatch> MutationQueue::DrainAll() {
  Node* node = head_.exchange(nullptr, std::memory_order_acquire);
  // The detached list is newest-first; reverse into submission order.
  std::vector<MutationBatch> batches;
  Node* reversed = nullptr;
  while (node != nullptr) {
    Node* next = node->next;
    node->next = reversed;
    reversed = node;
    node = next;
  }
  while (reversed != nullptr) {
    batches.push_back(std::move(reversed->batch));
    Node* next = reversed->next;
    delete reversed;
    reversed = next;
  }
  return batches;
}

}  // namespace hytgraph
