// DeltaOverlay: pending edge mutations layered over an immutable base CSR.
//
// The base snapshot is never modified; the overlay records, per source
// vertex, (a) tombstones suppressing all base edges to a given target and
// (b) inserted edges in application order. Adjacency iteration merges the
// two on the fly (surviving base edges first, then inserts), so readers —
// the GraphView the whole execution stack runs on, and the incremental
// recomputation path — see the mutated graph without any CSR rebuild. Once
// the delta grows past the compaction policy threshold (or Engine::Compact
// is called), SnapshotCompactor folds the overlay into a fresh base via
// Materialize().
//
// Thread safety: Apply/Reset are writes; everything else is a read. The
// owner (hytgraph::Engine) guarantees readers never observe a write:
// queries pin an overlay snapshot via shared ownership, and ApplyMutations
// mutates in place only when the use count proves nothing outside the
// engine holds the object — otherwise the batch lands on a private
// copy-on-write clone published when complete.

#ifndef HYTGRAPH_DYNAMIC_DELTA_OVERLAY_H_
#define HYTGRAPH_DYNAMIC_DELTA_OVERLAY_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dynamic/mutation.h"
#include "graph/csr_graph.h"
#include "graph/types.h"
#include "storage/edge_block_store.h"
#include "util/status.h"

namespace hytgraph {

class DeltaOverlay {
 public:
  /// What one Apply() actually changed. `deleted` counts edges removed
  /// (base edges newly suppressed plus overlay inserts erased); a deletion
  /// naming a non-existent edge is a recorded no-op, not an error.
  struct ApplyStats {
    uint64_t inserted = 0;
    uint64_t deleted = 0;
  };

  /// `base_store` streams the base adjacency when the base's edge arrays
  /// have been spilled out of core (null = fully resident base).
  explicit DeltaOverlay(std::shared_ptr<const CsrGraph> base,
                        std::shared_ptr<const EdgeBlockStore> base_store =
                            nullptr)
      : base_(std::move(base)), base_store_(std::move(base_store)) {}

  const CsrGraph& base() const { return *base_; }
  std::shared_ptr<const CsrGraph> base_ptr() const { return base_; }
  const std::shared_ptr<const EdgeBlockStore>& base_store() const {
    return base_store_;
  }

  VertexId num_vertices() const { return base_->num_vertices(); }
  /// Edge count of the mutated graph (base - suppressed + inserted).
  EdgeId num_edges() const {
    return base_->num_edges() - suppressed_ + inserted_;
  }
  bool is_weighted() const { return base_->is_weighted(); }

  /// No pending mutations: the overlay is a transparent view of the base.
  bool empty() const { return suppressed_ == 0 && inserted_ == 0; }
  /// Pending delta size (suppressed base edges + inserted edges) — the
  /// quantity compaction policies threshold on.
  uint64_t delta_edges() const { return suppressed_ + inserted_; }

  /// Applies `batch` in order. The batch must already be Validate()d
  /// against num_vertices(); out-of-range endpoints are a checked error.
  Result<ApplyStats> Apply(const MutationBatch& batch);

  /// Out-degree of v in the mutated graph. O(1): per-vertex insert and
  /// suppressed-base-edge counts are maintained incrementally by Apply.
  EdgeId out_degree(VertexId v) const {
    auto it = deltas_.find(v);
    if (it == deltas_.end()) return base_->out_degree(v);
    return base_->out_degree(v) + it->second.inserts.size() -
           it->second.suppressed;
  }


  /// Whether v has any pending delta (inserts or tombstones). Readers use
  /// this to keep the zero-delta fast path (plain base spans) per vertex.
  bool HasDelta(VertexId v) const { return deltas_.contains(v); }

  /// Whether base edges v -> dst are suppressed by a tombstone.
  bool IsTombstoned(VertexId v, VertexId dst) const {
    auto it = deltas_.find(v);
    return it != deltas_.end() && it->second.IsTombstoned(dst);
  }

  /// Visits every vertex with a pending delta (unspecified order).
  template <typename Fn>
  void ForEachDeltaVertex(Fn&& fn) const {
    for (const auto& [v, delta] : deltas_) fn(v);
  }

  /// Visits v's overlay inserts in application order as (target, weight).
  template <typename Fn>
  void ForEachInsert(VertexId v, Fn&& fn) const {
    auto it = deltas_.find(v);
    if (it == deltas_.end()) return;
    for (const auto& [dst, w] : it->second.inserts) fn(dst, w);
  }

  /// Visits v's tombstoned targets in ascending order. Every listed target
  /// suppresses at least one base edge (Apply never records a no-op).
  template <typename Fn>
  void ForEachTombstone(VertexId v, Fn&& fn) const {
    auto it = deltas_.find(v);
    if (it == deltas_.end()) return;
    for (VertexId dst : it->second.tombstones) fn(dst);
  }

  /// Visits every out-edge of v in the mutated graph: surviving base edges
  /// in CSR order, then overlay inserts in application order. `fn` receives
  /// (target, weight); weight is 1 when the base is unweighted, mirroring
  /// the kernels' convention.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    BlockRef lease;
    ForEachNeighborLeased(v, &lease, std::forward<Fn>(fn));
  }

  /// Lease-carrying variant for ascending scans over an out-of-core base:
  /// consecutive vertices of the same block reuse the pinned lease instead
  /// of re-acquiring it from the cache.
  template <typename Fn>
  void ForEachNeighborLeased(VertexId v, BlockRef* lease, Fn&& fn) const {
    auto it = deltas_.find(v);
    std::span<const VertexId> nbrs;
    std::span<const Weight> wts;
    if (base_store_ != nullptr) {
      const AdjacencyRun run = base_store_->Fetch(v, lease);
      nbrs = run.targets;
      wts = run.weights;
    } else {
      nbrs = base_->neighbors(v);
      wts = base_->weights(v);
    }
    if (it == deltas_.end()) {
      for (size_t e = 0; e < nbrs.size(); ++e) {
        fn(nbrs[e], wts.empty() ? Weight{1} : wts[e]);
      }
      return;
    }
    const VertexDelta& delta = it->second;
    for (size_t e = 0; e < nbrs.size(); ++e) {
      if (delta.IsTombstoned(nbrs[e])) continue;
      fn(nbrs[e], wts.empty() ? Weight{1} : wts[e]);
    }
    const bool weighted = is_weighted();
    for (const auto& [dst, w] : delta.inserts) {
      fn(dst, weighted ? w : Weight{1});
    }
  }

  /// Folds base + delta into a fresh standalone CSR (the compaction
  /// product). Weightedness follows the base.
  Result<CsrGraph> Materialize() const;

  /// Drops all pending mutations and re-anchors the overlay on `new_base`
  /// (the snapshot a compaction just produced) with its block store (null
  /// when the new base is fully resident).
  void Reset(std::shared_ptr<const CsrGraph> new_base,
             std::shared_ptr<const EdgeBlockStore> new_store = nullptr) {
    base_ = std::move(new_base);
    base_store_ = std::move(new_store);
    deltas_.clear();
    suppressed_ = 0;
    inserted_ = 0;
  }

 private:
  struct VertexDelta {
    std::vector<std::pair<VertexId, Weight>> inserts;
    std::vector<VertexId> tombstones;  // sorted target ids
    /// Base edges hidden by `tombstones` (counts parallel edges) — keeps
    /// out_degree O(1) instead of re-filtering the base adjacency.
    EdgeId suppressed = 0;

    bool IsTombstoned(VertexId dst) const {
      return std::binary_search(tombstones.begin(), tombstones.end(), dst);
    }
    bool Empty() const { return inserts.empty() && tombstones.empty(); }
  };

  std::shared_ptr<const CsrGraph> base_;
  /// Streams base adjacency when the base is out of core; null otherwise.
  std::shared_ptr<const EdgeBlockStore> base_store_;
  std::unordered_map<VertexId, VertexDelta> deltas_;
  uint64_t suppressed_ = 0;  // base edges hidden by tombstones
  uint64_t inserted_ = 0;    // live overlay inserts
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_DELTA_OVERLAY_H_
