// DeltaOverlay: pending edge mutations layered over an immutable base CSR.
//
// The base snapshot is never modified; the overlay records, per source
// vertex, (a) tombstones suppressing all edges to a given target and (b)
// inserted edges in application order. Adjacency iteration merges the two
// on the fly (surviving base edges first, then live inserts), so readers —
// the GraphView the whole execution stack runs on, and the incremental
// recomputation path — see the mutated graph without any CSR rebuild. Once
// the delta grows past the compaction policy threshold (or Engine::Compact
// is called), SnapshotCompactor folds the overlay into a fresh base via
// Materialize().
//
// Overlays form a parent chain. NewTail(parent) opens an O(1) tail layer
// over an existing overlay: the chain below stays physically immutable (a
// pinned reader's view never changes underneath it) while new batches land
// in the tail, so publication under a racing reader is a pointer swap, not
// an O(delta) copy-on-write clone. A tail's tombstones suppress base edges
// AND inserts of older layers; the logical graph read through the tail is
// always base + the whole chain merged. Collapsed() folds a chain back
// into one layer (the Engine caps chain depth); a single-layer overlay
// (`parent() == nullptr`) takes fast paths everywhere and behaves exactly
// like the pre-chain implementation.
//
// Thread safety: Apply/Reset are writes; everything else is a read. The
// owner (hytgraph::Engine) guarantees readers never observe a write:
// every reader pins the overlay through an OverlayPin (GraphView holds
// one per instance), and ApplyMutations mutates in place only when an
// acquire load of the pin count proves no reader beyond the engine's own
// published view holds the object — otherwise the batch lands in a fresh
// tail layer published when complete. The count must be this explicit
// atomic rather than shared_ptr::use_count(): use_count() is a relaxed
// load, so a reader dropping its pin right before the writer's check
// would not order the reader's finished traversal before the in-place
// writes — a genuine data race under the memory model (and under TSan),
// even though the mutex already serializes pin *creation* against the
// writer. The release-decrement / acquire-load pair restores the edge.

#ifndef HYTGRAPH_DYNAMIC_DELTA_OVERLAY_H_
#define HYTGRAPH_DYNAMIC_DELTA_OVERLAY_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dynamic/mutation.h"
#include "graph/csr_graph.h"
#include "graph/types.h"
#include "storage/edge_block_store.h"
#include "util/status.h"

namespace hytgraph {

class DeltaOverlay {
 public:
  /// What one Apply() actually changed. `deleted` counts edges removed
  /// (edges newly suppressed — base or older-layer inserts — plus own
  /// overlay inserts erased); a deletion naming a non-existent edge is a
  /// recorded no-op, not an error. `deleted_edges` lists every removed
  /// edge instance with the weight it carried — the Engine's mutation log
  /// feeds the deletion-aware incremental paths from these records.
  struct ApplyStats {
    uint64_t inserted = 0;
    uint64_t deleted = 0;
    std::vector<EdgeRecord> deleted_edges;
  };

  /// `base_store` streams the base adjacency when the base's edge arrays
  /// have been spilled out of core (null = fully resident base).
  explicit DeltaOverlay(std::shared_ptr<const CsrGraph> base,
                        std::shared_ptr<const EdgeBlockStore> base_store =
                            nullptr)
      : base_(std::move(base)), base_store_(std::move(base_store)) {}

  /// Copies/assigns overlay CONTENT only: the pin count is per-object
  /// reader state (outstanding OverlayPins on that object), so it stays
  /// at the target's own value — content copies (Collapsed's
  /// single-layer path) produce unpinned fresh objects.
  DeltaOverlay(const DeltaOverlay& other)
      : base_(other.base_),
        base_store_(other.base_store_),
        parent_(other.parent_),
        depth_(other.depth_),
        deltas_(other.deltas_),
        suppressed_(other.suppressed_),
        inserted_(other.inserted_),
        parent_suppressed_(other.parent_suppressed_) {}
  DeltaOverlay& operator=(const DeltaOverlay& other) {
    base_ = other.base_;
    base_store_ = other.base_store_;
    parent_ = other.parent_;
    depth_ = other.depth_;
    deltas_ = other.deltas_;
    suppressed_ = other.suppressed_;
    inserted_ = other.inserted_;
    parent_suppressed_ = other.parent_suppressed_;
    return *this;
  }

  /// Opens an O(1) tail layer over `parent` (same base, same block store).
  /// The chain below the tail must never be mutated again; readers pinning
  /// `parent` (or any deeper layer) keep an unchanged view while batches
  /// land in the tail. Chaining onto an empty single-layer overlay is
  /// skipped — the tail is then a fresh standalone overlay.
  static std::shared_ptr<DeltaOverlay> NewTail(
      std::shared_ptr<const DeltaOverlay> parent);

  /// Folds the whole chain into an equivalent single-layer overlay over
  /// the same base (the Engine's depth-cap escape hatch). O(delta).
  std::shared_ptr<DeltaOverlay> Collapsed() const;

  /// --- Reader-pin protocol (see the thread-safety note above) ---
  /// Balanced by OverlayPin; counts readers that may traverse this layer
  /// without holding the engine's lock. The increment can be relaxed: a
  /// pin is only ever created under the engine's shared lock or by
  /// copying a still-live pin, both of which the writer's exclusive
  /// section already orders against.
  void AddPin() const { pins_.fetch_add(1, std::memory_order_relaxed); }
  /// Release ordering publishes every read the dropping reader made.
  void ReleasePin() const { pins_.fetch_sub(1, std::memory_order_release); }
  /// Writer-side check: acquire pairs with ReleasePin, so a count at the
  /// engine's own baseline proves all other readers' traversals
  /// happened-before the in-place mutation about to run.
  int64_t reader_pins_acquire() const {
    return pins_.load(std::memory_order_acquire);
  }

  /// Layers in the chain (1 = no tail layers).
  int depth() const { return depth_; }
  const std::shared_ptr<const DeltaOverlay>& parent() const {
    return parent_;
  }

  const CsrGraph& base() const { return *base_; }
  std::shared_ptr<const CsrGraph> base_ptr() const { return base_; }
  const std::shared_ptr<const EdgeBlockStore>& base_store() const {
    return base_store_;
  }

  VertexId num_vertices() const { return base_->num_vertices(); }
  /// Edge count of the mutated graph (base - suppressed + live inserts),
  /// merged over the whole chain.
  EdgeId num_edges() const {
    return base_->num_edges() - TotalSuppressedBase() + TotalLiveInserted();
  }
  bool is_weighted() const { return base_->is_weighted(); }

  /// No pending mutations: the overlay is a transparent view of the base.
  /// Deliberately conservative for chains — a multi-layer chain whose
  /// deltas happen to cancel still reports non-empty, so the fold path
  /// (which also collapses the chain) is never skipped.
  bool empty() const {
    return parent_ == nullptr && suppressed_ == 0 && inserted_ == 0;
  }
  /// Pending delta size (suppressed base edges + live inserted edges) —
  /// the quantity compaction policies threshold on.
  uint64_t delta_edges() const {
    return TotalSuppressedBase() + TotalLiveInserted();
  }

  /// Applies `batch` in order. The batch must already be Validate()d
  /// against num_vertices(); out-of-range endpoints are a checked error.
  Result<ApplyStats> Apply(const MutationBatch& batch);

  /// Out-degree of v in the mutated graph. O(depth): each layer keeps its
  /// per-vertex degree contribution incrementally maintained by Apply.
  EdgeId out_degree(VertexId v) const {
    int64_t delta = 0;
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      auto it = layer->deltas_.find(v);
      if (it == layer->deltas_.end()) continue;
      delta += static_cast<int64_t>(it->second.inserts.size()) -
               static_cast<int64_t>(it->second.suppressed) -
               static_cast<int64_t>(it->second.parent_suppressed);
    }
    return static_cast<EdgeId>(
        static_cast<int64_t>(base_->out_degree(v)) + delta);
  }

  /// Whether v has any pending delta (inserts or tombstones) in any layer.
  /// Readers use this to keep the zero-delta fast path (plain base spans)
  /// per vertex.
  bool HasDelta(VertexId v) const {
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      if (layer->deltas_.contains(v)) return true;
    }
    return false;
  }

  /// Whether base edges v -> dst are suppressed by a tombstone in any
  /// layer of the chain.
  bool IsTombstoned(VertexId v, VertexId dst) const {
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      auto it = layer->deltas_.find(v);
      if (it != layer->deltas_.end() && it->second.IsTombstoned(dst)) {
        return true;
      }
    }
    return false;
  }

  /// Visits every vertex with a pending delta in some layer, deduplicated
  /// across the chain (unspecified order).
  template <typename Fn>
  void ForEachDeltaVertex(Fn&& fn) const {
    if (parent_ == nullptr) {
      for (const auto& [v, delta] : deltas_) fn(v);
      return;
    }
    std::unordered_set<VertexId> seen;
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      for (const auto& [v, delta] : layer->deltas_) {
        if (seen.insert(v).second) fn(v);
      }
    }
  }

  /// Visits v's *live* overlay inserts in application order (oldest layer
  /// first) as (target, weight). An insert recorded in one layer and
  /// deleted by a newer layer's tombstone is skipped — chain readers only
  /// ever see edges of the merged logical graph.
  template <typename Fn>
  void ForEachInsert(VertexId v, Fn&& fn) const {
    if (parent_ == nullptr) {
      auto it = deltas_.find(v);
      if (it == deltas_.end()) return;
      for (const auto& [dst, w] : it->second.inserts) fn(dst, w);
      return;
    }
    const Chain chain = CollectChain(v);
    ForEachLiveInsertInChain(chain, std::forward<Fn>(fn));
  }

  /// Visits v's tombstoned targets in ascending order, deduplicated across
  /// the chain. For a single layer every listed target suppresses at least
  /// one edge (Apply never records a no-op); in a chain a tail tombstone
  /// may suppress only older-layer inserts, no base edges — consumers
  /// treating these as "base edges to filter" stay correct, just
  /// conservative.
  template <typename Fn>
  void ForEachTombstone(VertexId v, Fn&& fn) const {
    if (parent_ == nullptr) {
      auto it = deltas_.find(v);
      if (it == deltas_.end()) return;
      for (VertexId dst : it->second.tombstones) fn(dst);
      return;
    }
    std::vector<VertexId> merged;
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      auto it = layer->deltas_.find(v);
      if (it == layer->deltas_.end()) continue;
      merged.insert(merged.end(), it->second.tombstones.begin(),
                    it->second.tombstones.end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    for (VertexId dst : merged) fn(dst);
  }

  /// Visits every out-edge of v in the mutated graph: surviving base edges
  /// in CSR order, then live overlay inserts in application order. `fn`
  /// receives (target, weight); weight is 1 when the base is unweighted,
  /// mirroring the kernels' convention.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    BlockRef lease;
    ForEachNeighborLeased(v, &lease, std::forward<Fn>(fn));
  }

  /// Lease-carrying variant for ascending scans over an out-of-core base:
  /// consecutive vertices of the same block reuse the pinned lease instead
  /// of re-acquiring it from the cache.
  template <typename Fn>
  void ForEachNeighborLeased(VertexId v, BlockRef* lease, Fn&& fn) const {
    std::span<const VertexId> nbrs;
    std::span<const Weight> wts;
    if (base_store_ != nullptr) {
      const AdjacencyRun run = base_store_->Fetch(v, lease);
      nbrs = run.targets;
      wts = run.weights;
    } else {
      nbrs = base_->neighbors(v);
      wts = base_->weights(v);
    }
    if (parent_ == nullptr) {
      auto it = deltas_.find(v);
      if (it == deltas_.end()) {
        for (size_t e = 0; e < nbrs.size(); ++e) {
          fn(nbrs[e], wts.empty() ? Weight{1} : wts[e]);
        }
        return;
      }
      const VertexDelta& delta = it->second;
      for (size_t e = 0; e < nbrs.size(); ++e) {
        if (delta.IsTombstoned(nbrs[e])) continue;
        fn(nbrs[e], wts.empty() ? Weight{1} : wts[e]);
      }
      const bool weighted = is_weighted();
      for (const auto& [dst, w] : delta.inserts) {
        fn(dst, weighted ? w : Weight{1});
      }
      return;
    }

    const Chain chain = CollectChain(v);
    if (!chain.any_delta) {
      for (size_t e = 0; e < nbrs.size(); ++e) {
        fn(nbrs[e], wts.empty() ? Weight{1} : wts[e]);
      }
      return;
    }
    for (size_t e = 0; e < nbrs.size(); ++e) {
      bool tombstoned = false;
      for (const VertexDelta* delta : chain.deltas) {
        if (delta != nullptr && delta->IsTombstoned(nbrs[e])) {
          tombstoned = true;
          break;
        }
      }
      if (tombstoned) continue;
      fn(nbrs[e], wts.empty() ? Weight{1} : wts[e]);
    }
    const bool weighted = is_weighted();
    ForEachLiveInsertInChain(chain, [&](VertexId dst, Weight w) {
      fn(dst, weighted ? w : Weight{1});
    });
  }

  /// Folds base + delta into a fresh standalone CSR (the compaction
  /// product). Weightedness follows the base.
  Result<CsrGraph> Materialize() const;

  /// Drops all pending mutations (and any parent chain) and re-anchors the
  /// overlay on `new_base` (the snapshot a compaction just produced) with
  /// its block store (null when the new base is fully resident).
  void Reset(std::shared_ptr<const CsrGraph> new_base,
             std::shared_ptr<const EdgeBlockStore> new_store = nullptr) {
    base_ = std::move(new_base);
    base_store_ = std::move(new_store);
    deltas_.clear();
    parent_.reset();
    depth_ = 1;
    suppressed_ = 0;
    inserted_ = 0;
    parent_suppressed_ = 0;
  }

 private:
  struct VertexDelta {
    std::vector<std::pair<VertexId, Weight>> inserts;
    std::vector<VertexId> tombstones;  // sorted target ids
    /// Base edges hidden by `tombstones` (counts parallel edges) — keeps
    /// out_degree cheap instead of re-filtering the base adjacency.
    EdgeId suppressed = 0;
    /// Older-layer overlay inserts hidden by `tombstones`. Always 0 on a
    /// single-layer overlay.
    EdgeId parent_suppressed = 0;

    bool IsTombstoned(VertexId dst) const {
      return std::binary_search(tombstones.begin(), tombstones.end(), dst);
    }
    bool Empty() const { return inserts.empty() && tombstones.empty(); }
  };

  /// Per-layer VertexDelta pointers for one vertex, tail first (index 0 =
  /// this layer, last = root). Null entries mean "no delta in that layer".
  struct Chain {
    std::vector<const VertexDelta*> deltas;
    bool any_delta = false;
  };

  Chain CollectChain(VertexId v) const {
    Chain chain;
    chain.deltas.reserve(static_cast<size_t>(depth_));
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      auto it = layer->deltas_.find(v);
      const VertexDelta* delta =
          it == layer->deltas_.end() ? nullptr : &it->second;
      chain.deltas.push_back(delta);
      chain.any_delta |= delta != nullptr;
    }
    return chain;
  }

  /// Emits the chain's live inserts in application order: oldest layer
  /// first, each insert filtered by tombstones of strictly newer layers
  /// (own-layer deletes already erased their inserts physically).
  template <typename Fn>
  void ForEachLiveInsertInChain(const Chain& chain, Fn&& fn) const {
    for (size_t i = chain.deltas.size(); i-- > 0;) {
      const VertexDelta* delta = chain.deltas[i];
      if (delta == nullptr) continue;
      for (const auto& [dst, w] : delta->inserts) {
        bool dead = false;
        for (size_t j = 0; j < i; ++j) {  // strictly newer layers
          if (chain.deltas[j] != nullptr &&
              chain.deltas[j]->IsTombstoned(dst)) {
            dead = true;
            break;
          }
        }
        if (!dead) fn(dst, w);
      }
    }
  }

  uint64_t TotalSuppressedBase() const {
    uint64_t total = 0;
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      total += layer->suppressed_;
    }
    return total;
  }
  uint64_t TotalLiveInserted() const {
    int64_t total = 0;
    for (const DeltaOverlay* layer = this; layer != nullptr;
         layer = layer->parent_.get()) {
      total += static_cast<int64_t>(layer->inserted_) -
               static_cast<int64_t>(layer->parent_suppressed_);
    }
    return static_cast<uint64_t>(total);
  }

  std::shared_ptr<const CsrGraph> base_;
  /// Streams base adjacency when the base is out of core; null otherwise.
  std::shared_ptr<const EdgeBlockStore> base_store_;
  /// The immutable layer below this one (null for a single-layer overlay).
  /// Chains share the same base_/base_store_.
  std::shared_ptr<const DeltaOverlay> parent_;
  int depth_ = 1;
  std::unordered_map<VertexId, VertexDelta> deltas_;
  uint64_t suppressed_ = 0;  // base edges hidden by own tombstones
  uint64_t inserted_ = 0;    // own overlay inserts physically present
  /// Older-layer inserts hidden by own tombstones (0 on a single layer).
  uint64_t parent_suppressed_ = 0;
  /// Outstanding OverlayPins on this layer (mutable: pinning a const
  /// overlay is how readers work).
  mutable std::atomic<int64_t> pins_{0};
};

/// RAII reader pin on a DeltaOverlay (see the thread-safety note in the
/// header comment): every live GraphView holds one for its overlay, and
/// the Engine's background fold holds one across its off-lock
/// Materialize. Copying pins again; moving transfers the pin. The guard
/// keeps the overlay alive itself, so holders need no separate
/// shared_ptr for lifetime.
class OverlayPin {
 public:
  OverlayPin() = default;
  explicit OverlayPin(std::shared_ptr<const DeltaOverlay> overlay)
      : overlay_(std::move(overlay)) {
    if (overlay_ != nullptr) overlay_->AddPin();
  }
  OverlayPin(const OverlayPin& other) : OverlayPin(other.overlay_) {}
  OverlayPin(OverlayPin&& other) noexcept
      : overlay_(std::move(other.overlay_)) {}
  OverlayPin& operator=(const OverlayPin& other) {
    OverlayPin tmp(other);
    overlay_.swap(tmp.overlay_);
    return *this;
  }
  OverlayPin& operator=(OverlayPin&& other) noexcept {
    OverlayPin tmp(std::move(other));
    overlay_.swap(tmp.overlay_);
    return *this;
  }
  ~OverlayPin() {
    if (overlay_ != nullptr) overlay_->ReleasePin();
  }

 private:
  std::shared_ptr<const DeltaOverlay> overlay_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_DELTA_OVERLAY_H_
