#include "dynamic/snapshot_compactor.h"

#include <utility>

#include "util/timer.h"

namespace hytgraph {

Result<CsrGraph> SnapshotCompactor::Fold(const DeltaOverlay& overlay) {
  WallTimer timer;
  HYT_ASSIGN_OR_RETURN(CsrGraph snapshot, overlay.Materialize());
  RecordFold(snapshot.num_edges(), timer.Seconds());
  return snapshot;
}

}  // namespace hytgraph
