// Incremental recomputation for the monotone value-selection algorithms.
//
// After an insert-only mutation delta, the previous fixpoint of BFS / SSSP
// / CC / SSWP remains a valid bound in the mutated graph (edge insertion
// can only improve values: shorten distances, lower CC labels, widen
// bottlenecks). Chaotic relaxation seeded from the sources of the inserted
// edges therefore converges to *exactly* the from-scratch fixpoint — the
// standard argument: every intermediate value stays between the warm-start
// bound and the new fixpoint, and termination means no edge is violated.
//
// Edge deletion breaks the bound (a value may have depended on the removed
// edge), and the value-accumulation family (PR, PHP) has no per-vertex
// monotone bound at all; both fall back to full recomputation in the
// Engine (Engine::RunIncremental).
//
// The propagation iterates GraphView adjacency directly (merged base +
// overlay), so an incremental run after a small delta touches only the
// affected cone and never pays a CSR rebuild.

#ifndef HYTGRAPH_DYNAMIC_INCREMENTAL_H_
#define HYTGRAPH_DYNAMIC_INCREMENTAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/registry.h"
#include "dynamic/delta_overlay.h"
#include "graph/graph_view.h"
#include "graph/types.h"
#include "util/status.h"

namespace hytgraph {

/// True for the algorithms whose fixpoints warm-start exactly under
/// insert-only deltas: BFS, SSSP, CC, SSWP.
bool SupportsIncremental(AlgorithmId id);

struct IncrementalStats {
  uint64_t seed_vertices = 0;     // distinct seeds after dedup
  uint64_t relaxed_vertices = 0;  // vertex visits across all rounds
  uint64_t traversed_edges = 0;
  uint64_t improved_vertices = 0;  // value-change events
  uint64_t rounds = 0;
};

/// Advances `values` (the previous fixpoint, indexed by vertex id, size
/// num_vertices) to the fixpoint of the mutated graph viewed through
/// `graph`. `seeds` are the vertices whose out-edges may be violated —
/// for an insert-only delta, the sources of the inserted edges. `source`
/// is the query source for the source-seeded algorithms (ignored by CC);
/// it must match the source the previous fixpoint was computed from.
///
/// Precondition: the deltas between the previous fixpoint's graph and
/// `graph` are insert-only (callers enforce this; see Engine).
Result<IncrementalStats> IncrementalRecompute(const GraphView& graph,
                                              AlgorithmId id, VertexId source,
                                              std::span<const VertexId> seeds,
                                              std::vector<uint32_t>* values);

/// DeltaOverlay convenience overload (tests, direct callers): a non-owning
/// view over `overlay`, which must outlive the call.
inline Result<IncrementalStats> IncrementalRecompute(
    const DeltaOverlay& overlay, AlgorithmId id, VertexId source,
    std::span<const VertexId> seeds, std::vector<uint32_t>* values) {
  return IncrementalRecompute(GraphView::Wrap(overlay), id, source, seeds,
                              values);
}

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_INCREMENTAL_H_
