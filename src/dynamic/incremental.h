// Incremental recomputation for the monotone value-selection algorithms.
//
// After an insert-only mutation delta, the previous fixpoint of BFS / SSSP
// / CC / SSWP remains a valid bound in the mutated graph (edge insertion
// can only improve values: shorten distances, lower CC labels, widen
// bottlenecks). Chaotic relaxation seeded from the sources of the inserted
// edges therefore converges to *exactly* the from-scratch fixpoint — the
// standard argument: every intermediate value stays between the warm-start
// bound and the new fixpoint, and termination means no edge is violated.
//
// Edge deletion breaks the bound (a value may have depended on the removed
// edge). DeletionAwareRecompute handles it KickStarter-style with an
// explicit dependency forest: `parents[v]` names the in-neighbor whose
// relaxation produced v's current value (kInvalidVertex for axioms —
// the source, identity-valued vertices, the unreached). A deletion
// invalidates exactly the subtrees rooted at deleted TREE edges: the cone
// floods forward along parent pointers only, its members reset to the
// identity value, and the frontier re-seeds from the cone's non-cone
// in-neighbors plus the delta's insert sources. Everything outside the
// cone keeps its parent chain — an intact derivation of its exact value
// from an axiom through surviving edges, which deletions cannot beat and
// insert-driven improvements reach through the re-seeded frontier.
//
// The forest matters because consistency alone over-floods: CC's
// candidate equals the label itself and SSWP's bottleneck widths tie
// freely, so "y is consistent with a cone member" sweeps whole label
// classes into the cone. Parent pointers are tie-free (each vertex has
// ONE recorded deriver, and chains are acyclic by construction — a parent
// reached its value strictly before its child), so the cone is the true
// dependency cone. When the caller has no forest (the previous result
// came from a full solver run), one certification pass derives it: BFS
// from the axioms along consistency edges over the post-delta view
// assigns parents, and whatever it cannot certify *is* the cone.
//
// The value-accumulation family (PR, PHP) has no per-vertex monotone
// bound; AccumulativeRecompute advances it Maiter-style instead: the new
// fixpoint r' of r = b + d·Aᵀr differs from the old one by
// δ = d·A'ᵀδ + d·(A' − A)ᵀr, so re-injecting each mutated vertex's
// contribution change (computed from the previous values) and running
// chaotic delta propagation on the *current* graph converges to the new
// fixpoint up to the epsilon residual — the same tolerance the push
// kernels terminate with.
//
// The propagation iterates GraphView adjacency directly (merged base +
// overlay), so an incremental run after a small delta touches only the
// affected cone and never pays a CSR rebuild.

#ifndef HYTGRAPH_DYNAMIC_INCREMENTAL_H_
#define HYTGRAPH_DYNAMIC_INCREMENTAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/registry.h"
#include "dynamic/delta_overlay.h"
#include "graph/graph_view.h"
#include "graph/types.h"
#include "util/status.h"

namespace hytgraph {

/// True for the algorithms whose fixpoints warm-start exactly under
/// insert-only deltas: BFS, SSSP, CC, SSWP.
bool SupportsIncremental(AlgorithmId id);

struct IncrementalStats {
  uint64_t seed_vertices = 0;     // distinct seeds after dedup
  uint64_t relaxed_vertices = 0;  // vertex visits across all rounds
  uint64_t traversed_edges = 0;
  uint64_t improved_vertices = 0;  // value-change events
  uint64_t rounds = 0;
  /// Vertices invalidated by the deletion cone (0 on the insert-only and
  /// accumulative paths).
  uint64_t cone_vertices = 0;
  /// True when the dependency forest was rebuilt by a certification pass
  /// (the caller supplied no parents), rather than reused and patched.
  bool forest_derived = false;
};

/// Advances `values` (the previous fixpoint, indexed by vertex id, size
/// num_vertices) to the fixpoint of the mutated graph viewed through
/// `graph`. `seeds` are the vertices whose out-edges may be violated —
/// for an insert-only delta, the sources of the inserted edges. `source`
/// is the query source for the source-seeded algorithms (ignored by CC);
/// it must match the source the previous fixpoint was computed from.
///
/// Precondition: the deltas between the previous fixpoint's graph and
/// `graph` are insert-only (callers enforce this; see Engine).
///
/// When `parents` is non-null (size num_vertices), the dependency forest
/// is kept consistent with the advanced values: every improvement records
/// its deriver. Callers chaining into DeletionAwareRecompute later MUST
/// pass it — stale parents under-invalidate.
Result<IncrementalStats> IncrementalRecompute(
    const GraphView& graph, AlgorithmId id, VertexId source,
    std::span<const VertexId> seeds, std::vector<uint32_t>* values,
    std::vector<VertexId>* parents = nullptr);

/// DeltaOverlay convenience overload (tests, direct callers): a non-owning
/// view over `overlay`, which must outlive the call.
inline Result<IncrementalStats> IncrementalRecompute(
    const DeltaOverlay& overlay, AlgorithmId id, VertexId source,
    std::span<const VertexId> seeds, std::vector<uint32_t>* values) {
  return IncrementalRecompute(GraphView::Wrap(overlay), id, source, seeds,
                              values);
}

/// Advances `values` across a delta that CONTAINS DELETIONS (and possibly
/// inserts) for the monotone family: dependency-cone invalidation +
/// boundary re-seeding, exact against a full recompute. `inserted_edges`
/// / `deleted_edges` are the per-epoch mutation-log records since the
/// previous fixpoint, in application order; `graph` is the post-delta
/// view. Builds the reverse side on first use (EnsureReverse) for the
/// boundary scan.
///
/// `parents` is the in/out dependency forest. Sized num_vertices and
/// consistent with `values` on entry → the cone is the exact forward
/// closure of the deleted tree edges (cheap). Any other size → one O(E)
/// certification pass rebuilds it and discovers the cone at the same
/// time. On return it is consistent with the advanced values, ready for
/// the next epoch.
Result<IncrementalStats> DeletionAwareRecompute(
    const GraphView& graph, AlgorithmId id, VertexId source,
    std::span<const EdgeRecord> inserted_edges,
    std::span<const EdgeRecord> deleted_edges,
    std::vector<uint32_t>* values, std::vector<VertexId>* parents);

/// Advances the previous PR/PHP fixpoint in `values` across an arbitrary
/// insert/delete delta by residual re-injection (see the header comment).
/// Exact up to the kernels' epsilon residual; `params` must match the
/// options the previous result was computed with. `source` is the PHP
/// source (ignored for PR).
Result<IncrementalStats> AccumulativeRecompute(
    const GraphView& graph, AlgorithmId id, VertexId source,
    const AlgoParams& params, std::span<const EdgeRecord> inserted_edges,
    std::span<const EdgeRecord> deleted_edges,
    std::vector<double>* values);

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_INCREMENTAL_H_
