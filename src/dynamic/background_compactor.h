// BackgroundCompactor: a worker thread that drains a fold queue so the
// O(E) SnapshotCompactor rebuild never runs on a mutator's or reader's
// thread. The Engine enqueues a request when the pending delta crosses the
// CompactionPolicy threshold (CompactionMode::kBackground) or when
// Engine::Compact() is called in that mode; the worker runs one fold cycle
// per drain — requests that pile up while a cycle runs are coalesced, since
// a single fold absorbs every delta pending at capture time.
//
// The compactor knows nothing about graphs: it runs an opaque fold-cycle
// callback (Engine::BackgroundFoldCycle), which captures the overlay under
// the Engine's write lock, materializes the fresh base CSR off every lock,
// and republishes — re-applying any mutation batches that raced the fold
// onto the new base. That keeps the queue mechanics (worker lifecycle,
// coalescing, idle barrier, shutdown) testable in isolation.
//
// Shutdown: Stop() (and the destructor) wakes the worker, abandons any
// not-yet-started requests, waits for an in-flight cycle to finish, and
// joins. The Engine destroys its BackgroundCompactor before any other
// member so a mid-cycle fold never touches freed engine state.

#ifndef HYTGRAPH_DYNAMIC_BACKGROUND_COMPACTOR_H_
#define HYTGRAPH_DYNAMIC_BACKGROUND_COMPACTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace hytgraph {

class BackgroundCompactor {
 public:
  struct Stats {
    /// RequestFold calls accepted (requests after Stop are dropped).
    uint64_t requested = 0;
    /// Fold cycles the worker started.
    uint64_t started = 0;
    /// Fold cycles that ran to completion.
    uint64_t completed = 0;
    /// Requests satisfied by an already-pending cycle instead of their own.
    uint64_t coalesced = 0;
  };

  /// Spawns the worker immediately; it sleeps until the first request.
  /// `fold_cycle` is invoked once per queue drain, on the worker thread,
  /// with no BackgroundCompactor lock held.
  explicit BackgroundCompactor(std::function<void()> fold_cycle);

  BackgroundCompactor(const BackgroundCompactor&) = delete;
  BackgroundCompactor& operator=(const BackgroundCompactor&) = delete;

  /// Stops and joins the worker (see Stop()).
  ~BackgroundCompactor();

  /// Enqueues a fold. Cheap and non-blocking: requests landing while a
  /// cycle is pending or running coalesce into the next drain. No-op after
  /// Stop().
  void RequestFold();

  /// Blocks until the queue is empty and no cycle is running — the
  /// publication barrier callers use to observe every fold they requested.
  /// Returns immediately after Stop().
  void WaitIdle();

  /// Abandons queued requests, waits for an in-flight cycle to complete,
  /// and joins the worker. Idempotent.
  void Stop();

  Stats stats() const;

 private:
  void Loop();

  std::function<void()> fold_cycle_;
  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  // worker wakeups
  std::condition_variable idle_cv_;  // WaitIdle / completion
  uint64_t pending_ = 0;
  bool cycle_running_ = false;
  bool stop_ = false;
  Stats stats_;
  std::thread worker_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_BACKGROUND_COMPACTOR_H_
