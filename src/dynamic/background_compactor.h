// BackgroundCompactor: a supervised worker thread that drains a fold queue
// so the O(E) SnapshotCompactor rebuild never runs on a mutator's or
// reader's thread. The Engine enqueues a request when the pending delta
// crosses the CompactionPolicy threshold (CompactionMode::kBackground) or
// when Engine::Compact() is called in that mode; the worker runs one fold
// cycle per drain — requests that pile up while a cycle runs are coalesced,
// since a single fold absorbs every delta pending at capture time.
//
// The compactor knows nothing about graphs: it runs an opaque fold-cycle
// callback (Engine::BackgroundFoldCycle), which captures the overlay under
// the Engine's write lock, materializes the fresh base CSR off every lock,
// and republishes — re-applying any mutation batches that raced the fold
// onto the new base. That keeps the queue mechanics (worker lifecycle,
// coalescing, idle barrier, shutdown) testable in isolation.
//
// Supervision: the cycle returns a CycleResult. A failed cycle (storage
// fault, injected fault, or a thrown exception — caught here) is parked
// for retry after its backoff instead of crashing the worker. A parked
// retry does NOT count as busy for WaitIdle: a degraded compactor must not
// deadlock readers behind WaitForCompaction — they keep serving on the
// unfolded overlay chain. WaitSettled() is the stronger barrier that also
// waits out parked retries (used by ingest, where a parked batch still
// holds unpublished mutations).
//
// Shutdown: Stop() (and the destructor) wakes the worker, abandons any
// not-yet-started requests and parked retries, waits for an in-flight
// cycle to finish, and joins. The Engine destroys its BackgroundCompactor
// before any other member so a mid-cycle fold never touches freed engine
// state.

#ifndef HYTGRAPH_DYNAMIC_BACKGROUND_COMPACTOR_H_
#define HYTGRAPH_DYNAMIC_BACKGROUND_COMPACTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>

namespace hytgraph {

/// What one worker cycle asks of its supervisor: nothing (done), or a
/// retry after `backoff`. Cycles are written to be re-runnable — a failed
/// fold abandons its capture, a failed ingest drain keeps the batch queued.
struct CycleResult {
  bool retry = false;
  std::chrono::microseconds backoff{0};
};

class BackgroundCompactor {
 public:
  struct Stats {
    /// RequestFold calls accepted (requests after Stop are dropped).
    uint64_t requested = 0;
    /// Fold cycles the worker started.
    uint64_t started = 0;
    /// Fold cycles that ran to completion.
    uint64_t completed = 0;
    /// Requests satisfied by an already-pending cycle instead of their own.
    uint64_t coalesced = 0;
    /// Cycles that failed and were parked for retry.
    uint64_t retries = 0;
  };

  /// Spawns the worker immediately; it sleeps until the first request.
  /// `cycle` is invoked once per queue drain, on the worker thread, with
  /// no BackgroundCompactor lock held. A thrown exception is treated as
  /// {retry, 1ms}.
  explicit BackgroundCompactor(std::function<CycleResult()> cycle);

  /// Adapter for infallible cycles: a void callable always completes.
  template <typename F,
            typename = std::enable_if_t<
                std::is_void_v<std::invoke_result_t<F&>>>>
  explicit BackgroundCompactor(F cycle)
      : BackgroundCompactor(std::function<CycleResult()>(
            [c = std::move(cycle)]() mutable {
              c();
              return CycleResult{};
            })) {}

  BackgroundCompactor(const BackgroundCompactor&) = delete;
  BackgroundCompactor& operator=(const BackgroundCompactor&) = delete;

  /// Stops and joins the worker (see Stop()).
  ~BackgroundCompactor();

  /// Enqueues a fold. Cheap and non-blocking: requests landing while a
  /// cycle is pending or running coalesce into the next drain. No-op after
  /// Stop().
  void RequestFold();

  /// Blocks until the queue is empty and no cycle is running — the
  /// publication barrier callers use to observe every fold they requested.
  /// A parked retry counts as idle (degraded, not busy), so a permanently
  /// failing cycle cannot deadlock this barrier. Returns immediately after
  /// Stop().
  void WaitIdle();

  /// Like WaitIdle, but additionally waits out parked retries: returns
  /// only when no work — running, queued, or awaiting retry — remains.
  /// Blocks for as long as the cycle keeps failing; callers disarm the
  /// failure first (tests) or accept the wait (ingest flush).
  void WaitSettled();

  /// Abandons queued requests and parked retries, waits for an in-flight
  /// cycle to complete, and joins the worker. Idempotent.
  void Stop();

  Stats stats() const;

 private:
  void Loop();
  CycleResult RunCycleGuarded();

  std::function<CycleResult()> cycle_;
  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  // worker wakeups
  std::condition_variable idle_cv_;  // WaitIdle / WaitSettled / completion
  uint64_t pending_ = 0;
  bool cycle_running_ = false;
  bool retry_armed_ = false;
  std::chrono::steady_clock::time_point retry_at_{};
  bool stop_ = false;
  Stats stats_;
  std::thread worker_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_BACKGROUND_COMPACTOR_H_
