// SnapshotCompactor: folds a DeltaOverlay into a fresh immutable CSR
// snapshot. Two triggers exist in the Engine:
//
//  * write-triggered — ApplyMutations compacts when the pending delta
//    exceeds the CompactionPolicy threshold, bounding overlay size during
//    mutation-heavy phases with no reads;
//  * read-triggered — a full (non-incremental) query needs a plain CSR for
//    the solver, so a stale snapshot is folded on first use and promoted to
//    the new base (the work was paid; keeping the delta would only repeat
//    it).
//
// Incremental queries iterate the overlay directly and never trigger a
// fold — that is what makes them cheap after small deltas.

#ifndef HYTGRAPH_DYNAMIC_SNAPSHOT_COMPACTOR_H_
#define HYTGRAPH_DYNAMIC_SNAPSHOT_COMPACTOR_H_

#include <algorithm>
#include <cstdint>

#include "dynamic/delta_overlay.h"
#include "graph/csr_graph.h"
#include "util/status.h"

namespace hytgraph {

/// When ApplyMutations folds eagerly. The threshold is the max of the two
/// knobs so small graphs do not compact on every batch and large graphs do
/// not accumulate unbounded deltas.
struct CompactionPolicy {
  /// Absolute floor on pending delta edges before a write-triggered fold.
  uint64_t min_delta_edges = 4096;
  /// Fold when the delta reaches this fraction of the base edge count.
  double delta_fraction = 0.05;

  uint64_t ThresholdFor(EdgeId base_edges) const {
    const auto scaled = static_cast<uint64_t>(
        delta_fraction * static_cast<double>(base_edges));
    return std::max(min_delta_edges, scaled);
  }
};

class SnapshotCompactor {
 public:
  struct Stats {
    uint64_t folds = 0;
    uint64_t edges_folded = 0;   // edge count of produced snapshots
    double total_seconds = 0.0;  // measured host wall time of the folds
  };

  explicit SnapshotCompactor(CompactionPolicy policy = {})
      : policy_(policy) {}

  const CompactionPolicy& policy() const { return policy_; }

  /// Write-trigger test: has the pending delta crossed the threshold?
  bool ShouldCompact(const DeltaOverlay& overlay) const {
    return overlay.delta_edges() >=
           policy_.ThresholdFor(overlay.base().num_edges());
  }

  /// Folds base + delta into a standalone CSR, timing the rebuild.
  Result<CsrGraph> Fold(const DeltaOverlay& overlay);

  const Stats& stats() const { return stats_; }

 private:
  CompactionPolicy policy_;
  Stats stats_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_SNAPSHOT_COMPACTOR_H_
