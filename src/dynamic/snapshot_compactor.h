// SnapshotCompactor: folds a DeltaOverlay into a fresh immutable CSR
// snapshot. Folding is purely *policy-driven* — queries never trigger it:
//
//  * write-triggered — under CompactionMode::kThreshold, ApplyMutations
//    compacts when the pending delta exceeds the policy threshold, bounding
//    overlay size (and therefore query-on-overlay overhead) during
//    mutation-heavy phases;
//  * explicit — Engine::Compact() folds on demand (the only trigger under
//    CompactionMode::kManual), letting servers schedule the O(E) rebuild
//    off the latency-critical path.
//
// Queries — full and incremental — execute directly on the GraphView
// (base + overlay) and never wait for a fold; compaction is an amortized
// background concern, not a query-latency tax.

#ifndef HYTGRAPH_DYNAMIC_SNAPSHOT_COMPACTOR_H_
#define HYTGRAPH_DYNAMIC_SNAPSHOT_COMPACTOR_H_

#include <algorithm>
#include <cstdint>

#include "dynamic/delta_overlay.h"
#include "graph/csr_graph.h"
#include "util/status.h"

namespace hytgraph {

/// When pending deltas are folded into a fresh base snapshot.
enum class CompactionMode : uint8_t {
  /// ApplyMutations folds eagerly once the delta crosses the threshold,
  /// inline on the mutator's thread (the batch that trips the threshold
  /// pays the O(E) rebuild).
  kThreshold = 0,
  /// Only an explicit Engine::Compact() folds; the delta grows unboundedly
  /// otherwise (callers own the schedule).
  kManual = 1,
  /// Crossing the threshold enqueues a fold on the Engine's
  /// BackgroundCompactor worker instead of folding inline: mutators and
  /// queries never block on the O(E) rebuild, and batches racing the fold
  /// land in a fresh overlay layered on the about-to-publish base. The
  /// delta can overshoot the threshold while a fold is in flight.
  kBackground = 2,
};

/// Compaction policy plus the mutation-log retirement horizon (the two
/// lifecycle knobs of the dynamic-graph subsystem). The fold threshold is
/// the max of the two knobs so small graphs do not compact on every batch
/// and large graphs do not accumulate unbounded deltas.
struct CompactionPolicy {
  CompactionMode mode = CompactionMode::kThreshold;
  /// Absolute floor on pending delta edges before a write-triggered fold.
  uint64_t min_delta_edges = 4096;
  /// Fold when the delta reaches this fraction of the base edge count.
  double delta_fraction = 0.05;
  /// Snapshot GC: per-epoch mutation-log entries older than this many
  /// epochs are retired, so the log cannot grow unboundedly under a
  /// long-lived mutation stream. RunIncremental from a retired epoch
  /// transparently falls back to a full recompute. 0 retains everything.
  uint64_t mutation_log_horizon = 1024;
  /// Deletion-aware incremental recomputation for BFS/SSSP/CC/SSWP:
  /// confine a deletion's invalidation to the affected cone and re-seed
  /// the frontier from the cone boundary instead of recomputing from
  /// scratch. Off restores the pre-cone behaviour — full-recompute
  /// fallback, reported as IncrementalFallback::kDeletionDelta (the bench
  /// A/B arm).
  bool incremental_deletion_cone = true;
  /// Maiter-style delta re-injection for the accumulation family (PR/PHP):
  /// warm-start from the previous ranks and re-inject only the mutated
  /// edges' residual contributions. Off = full-recompute fallback
  /// (IncrementalFallback::kUnsupportedAlgorithm).
  bool incremental_accumulative = true;

  uint64_t ThresholdFor(EdgeId base_edges) const {
    const auto scaled = static_cast<uint64_t>(
        delta_fraction * static_cast<double>(base_edges));
    return std::max(min_delta_edges, scaled);
  }
};

class SnapshotCompactor {
 public:
  struct Stats {
    uint64_t folds = 0;
    uint64_t edges_folded = 0;   // edge count of produced snapshots
    double total_seconds = 0.0;  // measured host wall time of the folds
  };

  explicit SnapshotCompactor(CompactionPolicy policy = {})
      : policy_(policy) {}

  const CompactionPolicy& policy() const { return policy_; }

  /// Write-trigger test: has the pending delta crossed the threshold?
  /// Always false under CompactionMode::kManual. Under kBackground a true
  /// result means "enqueue a background fold", not "fold inline".
  bool ShouldCompact(const DeltaOverlay& overlay) const {
    if (policy_.mode == CompactionMode::kManual) return false;
    return overlay.delta_edges() >=
           policy_.ThresholdFor(overlay.base().num_edges());
  }

  /// Folds base + delta into a standalone CSR, timing the rebuild.
  Result<CsrGraph> Fold(const DeltaOverlay& overlay);

  /// Accounts a fold whose Materialize ran elsewhere (the background
  /// worker rebuilds off the Engine's write lock and records the result
  /// under it, so stats stay lock-protected).
  void RecordFold(EdgeId snapshot_edges, double seconds) {
    ++stats_.folds;
    stats_.edges_folded += snapshot_edges;
    stats_.total_seconds += seconds;
  }

  const Stats& stats() const { return stats_; }

 private:
  CompactionPolicy policy_;
  Stats stats_;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_SNAPSHOT_COMPACTOR_H_
