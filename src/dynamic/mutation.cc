#include "dynamic/mutation.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>
#include <string>

#include "util/string_util.h"

namespace hytgraph {

const char* MutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::kInsertEdge:
      return "insert";
    case MutationOp::kDeleteEdge:
      return "delete";
  }
  return "unknown";
}

Status MutationBatch::Validate(VertexId num_vertices) const {
  for (size_t i = 0; i < mutations_.size(); ++i) {
    const EdgeMutation& m = mutations_[i];
    if (m.src >= num_vertices || m.dst >= num_vertices) {
      return Status::InvalidArgument(
          "mutation " + std::to_string(i) + " (" + MutationOpName(m.op) +
          " " + std::to_string(m.src) + "->" + std::to_string(m.dst) +
          ") references a vertex outside [0, " +
          std::to_string(num_vertices) + ")");
    }
  }
  return Status::OK();
}

Result<std::vector<MutationBatch>> MutationBatch::ParseReplay(
    std::istream& in) {
  std::vector<MutationBatch> batches;
  MutationBatch current;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) {
      if (!current.empty()) {
        batches.push_back(std::move(current));
        current = MutationBatch();
      }
      continue;
    }
    if (trimmed[0] == '#') continue;

    std::istringstream fields(trimmed);
    std::string op;
    long long src = -1;
    long long dst = -1;
    fields >> op >> src >> dst;
    if (fields.fail() || src < 0 || dst < 0) {
      return Status::IOError("replay line " + std::to_string(line_no) +
                             ": expected '+|- SRC DST [WEIGHT]', got '" +
                             trimmed + "'");
    }
    if (op == "+") {
      Weight weight = 1;
      std::string weight_token;
      if (fields >> weight_token) {
        // An optional weight must be a full decimal token in Weight range
        // (a stream extraction would silently store 0 on garbage).
        uint64_t parsed = 0;
        const char* begin = weight_token.data();
        const char* end = begin + weight_token.size();
        const auto [ptr, ec] = std::from_chars(begin, end, parsed);
        if (ec != std::errc{} || ptr != end ||
            parsed > std::numeric_limits<Weight>::max()) {
          return Status::IOError("replay line " + std::to_string(line_no) +
                                 ": bad weight '" + weight_token + "'");
        }
        weight = static_cast<Weight>(parsed);
      }
      current.InsertEdge(static_cast<VertexId>(src),
                         static_cast<VertexId>(dst), weight);
    } else if (op == "-") {
      current.DeleteEdge(static_cast<VertexId>(src),
                         static_cast<VertexId>(dst));
    } else {
      return Status::IOError("replay line " + std::to_string(line_no) +
                             ": unknown op '" + op + "' (want '+' or '-')");
    }
    std::string extra;
    if (fields >> extra) {
      return Status::IOError("replay line " + std::to_string(line_no) +
                             ": unexpected trailing token '" + extra + "'");
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

Result<std::vector<MutationBatch>> MutationBatch::ParseReplayFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open mutation replay file: " + path);
  }
  return ParseReplay(in);
}

}  // namespace hytgraph
