// MutationQueue: a lock-free multi-producer / single-consumer queue of
// MutationBatches — the admission side of the Engine's wait-free ingest
// path. Producers (EnqueueMutations, the serving layer's SubmitMutation)
// push with one CAS loop and never block on the snapshot lock, a running
// fold, or each other; the single consumer (the ingest worker) drains the
// whole queue with one atomic exchange and applies the batches in
// submission order.
//
// The push side is a Treiber stack (CAS the new node onto head_); the
// drain side exchanges head_ with null and reverses the detached list to
// FIFO. There is no interior pop, so the classic ABA hazard does not
// apply: a CAS that links onto a recycled node address still links onto a
// live, reachable node.
//
// Thread safety: Push from any number of threads; DrainAll from one
// consumer at a time. Destruction frees undrained batches.

#ifndef HYTGRAPH_DYNAMIC_MUTATION_QUEUE_H_
#define HYTGRAPH_DYNAMIC_MUTATION_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "dynamic/mutation.h"

namespace hytgraph {

class MutationQueue {
 public:
  MutationQueue() = default;
  MutationQueue(const MutationQueue&) = delete;
  MutationQueue& operator=(const MutationQueue&) = delete;
  ~MutationQueue();

  /// Lock-free producer push. Each producer's batches drain in its own
  /// submission order; batches of different producers interleave in CAS
  /// linearization order.
  void Push(MutationBatch batch);

  /// Detaches everything pushed so far and returns it oldest-first.
  /// Single consumer; O(drained).
  std::vector<MutationBatch> DrainAll();

  bool Empty() const {
    return head_.load(std::memory_order_acquire) == nullptr;
  }
  /// Batches ever pushed (monotone; drained or not).
  uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    MutationBatch batch;
    Node* next = nullptr;
  };

  std::atomic<Node*> head_{nullptr};
  std::atomic<uint64_t> pushed_{0};
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_MUTATION_QUEUE_H_
