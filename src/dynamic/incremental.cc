#include "dynamic/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

namespace hytgraph {

namespace {

constexpr uint32_t kUnreachableValue = std::numeric_limits<uint32_t>::max();

/// Per-algorithm relaxation semantics, mirroring the vertex programs in
/// algorithms/programs.h (including SSSP's wrapping uint32 add, so the
/// incremental fixpoint is bitwise identical to the solver's).
struct MinFamily {
  // BFS / SSSP / CC: smaller is better, kUnreachable (or the own label for
  // CC) means "nothing to push" only for the source-seeded pair.
  static bool Improves(uint32_t candidate, uint32_t current) {
    return candidate < current;
  }
};

struct BfsRelax : MinFamily {
  static bool Productive(uint32_t value) { return value != kUnreachableValue; }
  static uint32_t Candidate(uint32_t value, Weight /*w*/) { return value + 1; }
  static uint32_t ResetValue(VertexId /*v*/) { return kUnreachableValue; }
  static constexpr bool kSeedConeMembers = false;
};

struct SsspRelax : MinFamily {
  static bool Productive(uint32_t value) { return value != kUnreachableValue; }
  static uint32_t Candidate(uint32_t value, Weight w) { return value + w; }
  static uint32_t ResetValue(VertexId /*v*/) { return kUnreachableValue; }
  static constexpr bool kSeedConeMembers = false;
};

struct CcRelax : MinFamily {
  static bool Productive(uint32_t /*value*/) { return true; }
  static uint32_t Candidate(uint32_t value, Weight /*w*/) { return value; }
  /// CC's identity is the own label — which is itself productive, so cone
  /// members must re-seed the frontier to push their reset labels out.
  static uint32_t ResetValue(VertexId v) { return v; }
  static constexpr bool kSeedConeMembers = true;
};

struct SswpRelax {
  static bool Productive(uint32_t value) { return value != 0; }
  static uint32_t Candidate(uint32_t value, Weight w) {
    return std::min(value, static_cast<uint32_t>(w));
  }
  static bool Improves(uint32_t candidate, uint32_t current) {
    return candidate > current;
  }
  static uint32_t ResetValue(VertexId /*v*/) { return 0; }
  static constexpr bool kSeedConeMembers = false;
};

/// Chaotic relaxation from `seeds`. When `parents` is non-null, every
/// improvement records its deriver, keeping the dependency forest
/// consistent with the advanced values (chains stay acyclic: a parent
/// reached its final value strictly before the child it improves).
template <typename Relax>
IncrementalStats Propagate(const GraphView& graph,
                           std::span<const VertexId> seeds,
                           std::vector<uint32_t>* values,
                           std::vector<VertexId>* parents = nullptr) {
  IncrementalStats stats;
  std::vector<uint32_t>& vals = *values;
  std::vector<uint8_t> queued(vals.size(), 0);

  std::vector<VertexId> current;
  current.reserve(seeds.size());
  for (VertexId v : seeds) {
    if (!queued[v]) {
      queued[v] = 1;
      current.push_back(v);
    }
  }
  stats.seed_vertices = current.size();

  std::vector<VertexId> next;
  while (!current.empty()) {
    ++stats.rounds;
    for (VertexId u : current) {
      queued[u] = 0;
      ++stats.relaxed_vertices;
      const uint32_t value = vals[u];
      if (!Relax::Productive(value)) continue;
      graph.ForEachNeighbor(u, [&](VertexId v, Weight w) {
        ++stats.traversed_edges;
        const uint32_t candidate = Relax::Candidate(value, w);
        if (Relax::Improves(candidate, vals[v])) {
          vals[v] = candidate;
          if (parents != nullptr) (*parents)[v] = u;
          ++stats.improved_vertices;
          if (!queued[v]) {
            queued[v] = 1;
            next.push_back(v);
          }
        }
      });
    }
    current.swap(next);
    next.clear();
  }
  return stats;
}

/// Deletion-cone recompute for one Relax, driven by the dependency
/// forest. Phases over the ORIGINAL values (nothing is reset until the
/// cone is fully discovered):
///   1. cone discovery. Tree path, when the caller hands in a forest
///      consistent with the values: seed from deleted records that sever
///      a tree edge (tree[dst] == src) and flood forward along parent
///      pointers only — an out-neighbor joins iff its recorded deriver
///      fell. Consistency flooding would sweep whole label classes in for
///      the tie-prone relaxations (CC's candidate IS the label, SSWP's
///      widths tie freely); parent pointers are tie-free, so this cone is
///      the true dependency cone. Derive path, otherwise: certification
///      BFS from the axioms (the source; identity-valued vertices) along
///      consistency edges over the post-delta view, assigning parents as
///      derivations are found. Whatever it cannot certify still holding a
///      non-identity value IS the cone — its every derivation used a
///      deleted edge. Support through *other* deleted edges needs no
///      special casing on either path: deleted edges are absent from the
///      view, and each deleted tree edge seeds its own target;
///   2. reset cone members to the identity value and orphan their parent
///      slots;
///   3. re-seed propagation from the cone's productive non-cone
///      in-neighbors (their out-edges into the reset cone are now
///      violated), the delta's insert sources, and — for CC, whose
///      identity is productive — the cone members themselves. Propagation
///      records parents, leaving the forest consistent for the next
///      epoch.
///
/// Soundness: a vertex outside the cone keeps an intact parent chain —
/// an acyclic derivation of its exact value from an axiom through
/// surviving edges. Deletions only worsen the optimum, so a still-
/// achievable previous value is still optimal; insert-driven improvements
/// are applied by phase 3's insert-source seeds, for cone and non-cone
/// vertices alike.
template <typename Relax>
IncrementalStats ConeRecompute(const GraphView& graph, bool has_source,
                               VertexId source,
                               std::span<const EdgeRecord> inserts,
                               std::span<const EdgeRecord> deletes,
                               std::vector<uint32_t>* values,
                               std::vector<VertexId>* parents) {
  IncrementalStats stats;
  std::vector<uint32_t>& vals = *values;
  std::vector<VertexId>& tree = *parents;
  const VertexId n = graph.num_vertices();

  std::vector<uint8_t> in_cone(n, 0);
  std::vector<VertexId> cone;
  if (tree.size() == n) {
    auto join = [&](VertexId v) {
      // The source's value is axiomatic (never derived from an edge), so
      // it never joins the cone; its parent slot is always invalid.
      if (in_cone[v] || (has_source && v == source)) return;
      in_cone[v] = 1;
      cone.push_back(v);
    };
    for (const EdgeRecord& e : deletes) {
      if (tree[e.dst] == e.src) join(e.dst);
    }
    for (size_t i = 0; i < cone.size(); ++i) {
      const VertexId x = cone[i];
      graph.ForEachNeighbor(x, [&](VertexId z, Weight /*w*/) {
        ++stats.traversed_edges;
        if (tree[z] == x) join(z);
      });
    }
  } else {
    stats.forest_derived = true;
    tree.assign(n, kInvalidVertex);
    std::vector<uint8_t> certified(n, 0);
    std::vector<VertexId> queue;
    for (VertexId v = 0; v < n; ++v) {
      if ((has_source && v == source) || vals[v] == Relax::ResetValue(v)) {
        certified[v] = 1;
        queue.push_back(v);
      }
    }
    for (size_t i = 0; i < queue.size(); ++i) {
      const VertexId x = queue[i];
      const uint32_t value = vals[x];
      if (!Relax::Productive(value)) continue;
      graph.ForEachNeighbor(x, [&](VertexId z, Weight w) {
        ++stats.traversed_edges;
        if (!certified[z] && vals[z] == Relax::Candidate(value, w)) {
          certified[z] = 1;
          tree[z] = x;
          queue.push_back(z);
        }
      });
    }
    for (VertexId v = 0; v < n; ++v) {
      if (!certified[v]) {
        in_cone[v] = 1;
        cone.push_back(v);
      }
    }
  }
  stats.cone_vertices = cone.size();

  for (VertexId x : cone) {
    vals[x] = Relax::ResetValue(x);
    tree[x] = kInvalidVertex;
  }

  std::vector<VertexId> seeds;
  if (!cone.empty()) graph.EnsureReverse();
  for (VertexId x : cone) {
    graph.ForEachInNeighbor(x, [&](VertexId p, Weight /*w*/) {
      ++stats.traversed_edges;
      if (!in_cone[p] && Relax::Productive(vals[p])) seeds.push_back(p);
    });
    if (Relax::kSeedConeMembers) seeds.push_back(x);
  }
  for (const EdgeRecord& e : inserts) seeds.push_back(e.src);

  const uint64_t closure_edges = stats.traversed_edges;
  const uint64_t cone_size = stats.cone_vertices;
  const bool derived = stats.forest_derived;
  stats = Propagate<Relax>(graph, seeds, values, &tree);
  stats.traversed_edges += closure_edges;
  stats.cone_vertices = cone_size;
  stats.forest_derived = derived;
  return stats;
}

/// Chaotic residual propagation for the accumulation family: consume each
/// vertex's pending delta into its value and share d * delta through the
/// out-edges, scaled by EdgeShare (1/deg for PR, w/W for PHP), activating
/// targets whose |pending| reaches epsilon. Mirrors the push kernels'
/// termination; leftover sub-epsilon residual folds into the final values
/// exactly like the kernels' Values().
template <typename ShareFn>
void PropagateResidual(const GraphView& graph, double damping,
                       double epsilon, VertexId skip_target,
                       std::vector<double>* pending,
                       std::vector<double>* values, ShareFn&& share,
                       IncrementalStats* stats) {
  std::vector<double>& delta = *pending;
  std::vector<double>& vals = *values;
  std::vector<uint8_t> queued(vals.size(), 0);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < delta.size(); ++v) {
    if (std::abs(delta[v]) >= epsilon) {
      queued[v] = 1;
      queue.push_back(v);
    }
  }
  stats->seed_vertices = queue.size();
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    queued[u] = 0;
    const double consumed = delta[u];
    delta[u] = 0;
    vals[u] += consumed;
    ++stats->relaxed_vertices;
    if (consumed == 0) continue;
    share(u, damping * consumed, [&](VertexId v, double msg) {
      ++stats->traversed_edges;
      if (v == skip_target) return;
      delta[v] += msg;
      if (!queued[v] && std::abs(delta[v]) >= epsilon) {
        queued[v] = 1;
        queue.push_back(v);
      }
    });
  }
  for (VertexId v = 0; v < delta.size(); ++v) vals[v] += delta[v];
}

}  // namespace

bool SupportsIncremental(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kBfs:
    case AlgorithmId::kSssp:
    case AlgorithmId::kCc:
    case AlgorithmId::kSswp:
      return true;
    case AlgorithmId::kPageRank:
    case AlgorithmId::kPhp:
      return false;
  }
  return false;
}

Result<IncrementalStats> IncrementalRecompute(
    const GraphView& graph, AlgorithmId id, VertexId source,
    std::span<const VertexId> seeds, std::vector<uint32_t>* values,
    std::vector<VertexId>* parents) {
  if (!SupportsIncremental(id)) {
    return Status::InvalidArgument(
        std::string(AlgorithmName(id)) +
        " has no monotone warm-start; use a full recompute");
  }
  if (values->size() != graph.num_vertices()) {
    return Status::InvalidArgument(
        "previous values cover " + std::to_string(values->size()) +
        " vertices, graph has " + std::to_string(graph.num_vertices()));
  }
  for (VertexId v : seeds) {
    if (v >= graph.num_vertices()) {
      return Status::InvalidArgument("seed vertex " + std::to_string(v) +
                                     " out of range");
    }
  }
  const bool needs_source = GetAlgorithmInfo(id).needs_source;
  if (needs_source && source >= graph.num_vertices()) {
    return Status::InvalidArgument("source vertex out of range");
  }
  if (parents != nullptr && parents->size() != values->size()) {
    return Status::InvalidArgument(
        "dependency forest covers " + std::to_string(parents->size()) +
        " vertices, graph has " + std::to_string(graph.num_vertices()));
  }

  switch (id) {
    case AlgorithmId::kBfs:
      return Propagate<BfsRelax>(graph, seeds, values, parents);
    case AlgorithmId::kSssp:
      return Propagate<SsspRelax>(graph, seeds, values, parents);
    case AlgorithmId::kCc:
      return Propagate<CcRelax>(graph, seeds, values, parents);
    case AlgorithmId::kSswp:
      return Propagate<SswpRelax>(graph, seeds, values, parents);
    default:
      return Status::Internal("unhandled incremental algorithm");
  }
}

Result<IncrementalStats> DeletionAwareRecompute(
    const GraphView& graph, AlgorithmId id, VertexId source,
    std::span<const EdgeRecord> inserted_edges,
    std::span<const EdgeRecord> deleted_edges,
    std::vector<uint32_t>* values, std::vector<VertexId>* parents) {
  if (!SupportsIncremental(id)) {
    return Status::InvalidArgument(
        std::string(AlgorithmName(id)) +
        " has no deletion-cone warm-start; use a full recompute");
  }
  if (parents == nullptr) {
    return Status::InvalidArgument(
        "deletion-cone recompute needs a dependency-forest buffer");
  }
  if (values->size() != graph.num_vertices()) {
    return Status::InvalidArgument(
        "previous values cover " + std::to_string(values->size()) +
        " vertices, graph has " + std::to_string(graph.num_vertices()));
  }
  const bool needs_source = GetAlgorithmInfo(id).needs_source;
  if (needs_source && source >= graph.num_vertices()) {
    return Status::InvalidArgument("source vertex out of range");
  }
  for (const auto records : {inserted_edges, deleted_edges}) {
    for (const EdgeRecord& e : records) {
      if (e.src >= graph.num_vertices() || e.dst >= graph.num_vertices()) {
        return Status::InvalidArgument("delta edge record out of range");
      }
    }
  }

  switch (id) {
    case AlgorithmId::kBfs:
      return ConeRecompute<BfsRelax>(graph, needs_source, source,
                                     inserted_edges, deleted_edges, values,
                                      parents);
    case AlgorithmId::kSssp:
      return ConeRecompute<SsspRelax>(graph, needs_source, source,
                                      inserted_edges, deleted_edges, values,
                                      parents);
    case AlgorithmId::kCc:
      return ConeRecompute<CcRelax>(graph, needs_source, source,
                                    inserted_edges, deleted_edges, values,
                                      parents);
    case AlgorithmId::kSswp:
      return ConeRecompute<SswpRelax>(graph, needs_source, source,
                                      inserted_edges, deleted_edges, values,
                                      parents);
    default:
      return Status::Internal("unhandled deletion-cone algorithm");
  }
}

Result<IncrementalStats> AccumulativeRecompute(
    const GraphView& graph, AlgorithmId id, VertexId source,
    const AlgoParams& params, std::span<const EdgeRecord> inserted_edges,
    std::span<const EdgeRecord> deleted_edges,
    std::vector<double>* values) {
  if (id != AlgorithmId::kPageRank && id != AlgorithmId::kPhp) {
    return Status::InvalidArgument(
        std::string(AlgorithmName(id)) +
        " is not in the accumulation family");
  }
  const VertexId n = graph.num_vertices();
  if (values->size() != n) {
    return Status::InvalidArgument(
        "previous values cover " + std::to_string(values->size()) +
        " vertices, graph has " + std::to_string(n));
  }
  const bool is_php = id == AlgorithmId::kPhp;
  if (is_php && source >= n) {
    return Status::InvalidArgument("PHP source vertex out of range");
  }
  for (const auto records : {inserted_edges, deleted_edges}) {
    for (const EdgeRecord& e : records) {
      if (e.src >= n || e.dst >= n) {
        return Status::InvalidArgument("delta edge record out of range");
      }
    }
  }

  IncrementalStats stats;
  if (is_php && !graph.is_weighted()) {
    // The PHP kernel's weight sums are all zero on an unweighted graph —
    // no mass ever propagates, so mutations cannot move the fixpoint.
    return stats;
  }
  const double damping =
      is_php ? params.php.damping : params.pagerank.damping;
  const double epsilon =
      is_php ? params.php.epsilon : params.pagerank.epsilon;
  std::vector<double>& vals = *values;

  // Group the delta by mutated source vertex: the injection for u compares
  // u's old and new contribution rows in one pass.
  struct TouchedDelta {
    std::vector<std::pair<VertexId, Weight>> inserts;
    std::vector<std::pair<VertexId, Weight>> deletes;
  };
  std::unordered_map<VertexId, TouchedDelta> touched;
  for (const EdgeRecord& e : inserted_edges) {
    touched[e.src].inserts.emplace_back(e.dst, e.weight);
  }
  for (const EdgeRecord& e : deleted_edges) {
    touched[e.src].deletes.emplace_back(e.dst, e.weight);
  }

  std::vector<double> pending(n, 0.0);
  for (const auto& [u, delta] : touched) {
    // New row: u's current out-edges, aggregated per target as edge count
    // (PR) or weight sum (PHP). Old row = new − epoch inserts + epoch
    // deletes, replayed from the log records.
    std::unordered_map<VertexId, double> row_new;
    double norm_new = 0;
    graph.ForEachNeighbor(u, [&](VertexId t, Weight w) {
      ++stats.traversed_edges;
      const double share = is_php ? static_cast<double>(w) : 1.0;
      row_new[t] += share;
      norm_new += share;
    });
    std::unordered_map<VertexId, double> row_old = row_new;
    double norm_old = norm_new;
    for (const auto& [t, w] : delta.inserts) {
      const double share = is_php ? static_cast<double>(w) : 1.0;
      row_old[t] -= share;
      norm_old -= share;
    }
    for (const auto& [t, w] : delta.deletes) {
      const double share = is_php ? static_cast<double>(w) : 1.0;
      row_old[t] += share;
      norm_old += share;
    }
    const double mass = damping * vals[u];
    for (const auto& [t, unused] : row_old) {
      (void)unused;
      // Targets u no longer points at still need their old contribution
      // withdrawn, so make sure the iteration below covers them.
      row_new.try_emplace(t, 0.0);
    }
    for (const auto& [t, share_new] : row_new) {
      if (is_php && t == source) continue;  // mass into the source drops
      const double contrib_new =
          norm_new > 0 ? mass * share_new / norm_new : 0.0;
      auto old_it = row_old.find(t);
      const double share_old = old_it == row_old.end() ? 0.0 : old_it->second;
      const double contrib_old =
          norm_old > 0 ? mass * share_old / norm_old : 0.0;
      const double injection = contrib_new - contrib_old;
      if (injection != 0) {
        pending[t] += injection;
        ++stats.improved_vertices;
      }
    }
  }

  if (is_php) {
    PropagateResidual(
        graph, damping, epsilon, /*skip_target=*/source, &pending, &vals,
        [&](VertexId u, double mass, auto&& emit) {
          double weight_sum = 0;
          graph.ForEachNeighbor(
              u, [&](VertexId /*t*/, Weight w) { weight_sum += w; });
          if (weight_sum <= 0) return;
          graph.ForEachNeighbor(u, [&](VertexId t, Weight w) {
            emit(t, mass * static_cast<double>(w) / weight_sum);
          });
        },
        &stats);
  } else {
    PropagateResidual(
        graph, damping, epsilon, /*skip_target=*/kInvalidVertex, &pending,
        &vals,
        [&](VertexId u, double mass, auto&& emit) {
          const EdgeId degree = graph.out_degree(u);
          if (degree == 0) return;
          const double msg = mass / static_cast<double>(degree);
          graph.ForEachNeighbor(
              u, [&](VertexId t, Weight /*w*/) { emit(t, msg); });
        },
        &stats);
  }
  return stats;
}

}  // namespace hytgraph
