#include "dynamic/incremental.h"

#include <algorithm>
#include <limits>
#include <string>

namespace hytgraph {

namespace {

constexpr uint32_t kUnreachableValue = std::numeric_limits<uint32_t>::max();

/// Per-algorithm relaxation semantics, mirroring the vertex programs in
/// algorithms/programs.h (including SSSP's wrapping uint32 add, so the
/// incremental fixpoint is bitwise identical to the solver's).
struct MinFamily {
  // BFS / SSSP / CC: smaller is better, kUnreachable (or the own label for
  // CC) means "nothing to push" only for the source-seeded pair.
  static bool Improves(uint32_t candidate, uint32_t current) {
    return candidate < current;
  }
};

struct BfsRelax : MinFamily {
  static bool Productive(uint32_t value) { return value != kUnreachableValue; }
  static uint32_t Candidate(uint32_t value, Weight /*w*/) { return value + 1; }
};

struct SsspRelax : MinFamily {
  static bool Productive(uint32_t value) { return value != kUnreachableValue; }
  static uint32_t Candidate(uint32_t value, Weight w) { return value + w; }
};

struct CcRelax : MinFamily {
  static bool Productive(uint32_t /*value*/) { return true; }
  static uint32_t Candidate(uint32_t value, Weight /*w*/) { return value; }
};

struct SswpRelax {
  static bool Productive(uint32_t value) { return value != 0; }
  static uint32_t Candidate(uint32_t value, Weight w) {
    return std::min(value, static_cast<uint32_t>(w));
  }
  static bool Improves(uint32_t candidate, uint32_t current) {
    return candidate > current;
  }
};

template <typename Relax>
IncrementalStats Propagate(const GraphView& graph,
                           std::span<const VertexId> seeds,
                           std::vector<uint32_t>* values) {
  IncrementalStats stats;
  std::vector<uint32_t>& vals = *values;
  std::vector<uint8_t> queued(vals.size(), 0);

  std::vector<VertexId> current;
  current.reserve(seeds.size());
  for (VertexId v : seeds) {
    if (!queued[v]) {
      queued[v] = 1;
      current.push_back(v);
    }
  }
  stats.seed_vertices = current.size();

  std::vector<VertexId> next;
  while (!current.empty()) {
    ++stats.rounds;
    for (VertexId u : current) {
      queued[u] = 0;
      ++stats.relaxed_vertices;
      const uint32_t value = vals[u];
      if (!Relax::Productive(value)) continue;
      graph.ForEachNeighbor(u, [&](VertexId v, Weight w) {
        ++stats.traversed_edges;
        const uint32_t candidate = Relax::Candidate(value, w);
        if (Relax::Improves(candidate, vals[v])) {
          vals[v] = candidate;
          ++stats.improved_vertices;
          if (!queued[v]) {
            queued[v] = 1;
            next.push_back(v);
          }
        }
      });
    }
    current.swap(next);
    next.clear();
  }
  return stats;
}

}  // namespace

bool SupportsIncremental(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kBfs:
    case AlgorithmId::kSssp:
    case AlgorithmId::kCc:
    case AlgorithmId::kSswp:
      return true;
    case AlgorithmId::kPageRank:
    case AlgorithmId::kPhp:
      return false;
  }
  return false;
}

Result<IncrementalStats> IncrementalRecompute(const GraphView& graph,
                                              AlgorithmId id, VertexId source,
                                              std::span<const VertexId> seeds,
                                              std::vector<uint32_t>* values) {
  if (!SupportsIncremental(id)) {
    return Status::InvalidArgument(
        std::string(AlgorithmName(id)) +
        " has no monotone warm-start; use a full recompute");
  }
  if (values->size() != graph.num_vertices()) {
    return Status::InvalidArgument(
        "previous values cover " + std::to_string(values->size()) +
        " vertices, graph has " + std::to_string(graph.num_vertices()));
  }
  for (VertexId v : seeds) {
    if (v >= graph.num_vertices()) {
      return Status::InvalidArgument("seed vertex " + std::to_string(v) +
                                     " out of range");
    }
  }
  const bool needs_source = GetAlgorithmInfo(id).needs_source;
  if (needs_source && source >= graph.num_vertices()) {
    return Status::InvalidArgument("source vertex out of range");
  }

  switch (id) {
    case AlgorithmId::kBfs:
      return Propagate<BfsRelax>(graph, seeds, values);
    case AlgorithmId::kSssp:
      return Propagate<SsspRelax>(graph, seeds, values);
    case AlgorithmId::kCc:
      return Propagate<CcRelax>(graph, seeds, values);
    case AlgorithmId::kSswp:
      return Propagate<SswpRelax>(graph, seeds, values);
    default:
      return Status::Internal("unhandled incremental algorithm");
  }
}

}  // namespace hytgraph
