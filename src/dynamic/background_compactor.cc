#include "dynamic/background_compactor.h"

#include <utility>

namespace hytgraph {

BackgroundCompactor::BackgroundCompactor(std::function<void()> fold_cycle)
    : fold_cycle_(std::move(fold_cycle)),
      worker_([this] { Loop(); }) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::RequestFold() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    ++stats_.requested;
    // A pending or in-flight cycle captures the overlay *after* this
    // request's mutations published, so it will absorb them: piggyback
    // instead of queueing a redundant drain. An in-flight cycle captured
    // *before* this request, so that one needs a follow-up drain.
    if (pending_ > 0) {
      ++stats_.coalesced;
      return;
    }
    ++pending_;
  }
  wake_cv_.notify_one();
}

void BackgroundCompactor::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [&] { return stop_ || (pending_ == 0 && !cycle_running_); });
}

void BackgroundCompactor::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    pending_ = 0;
    // Claim the join under the lock so concurrent Stop calls cannot both
    // join; the loser swaps an empty handle.
    worker.swap(worker_);
  }
  wake_cv_.notify_all();
  idle_cv_.notify_all();
  if (worker.joinable()) worker.join();
}

BackgroundCompactor::Stats BackgroundCompactor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BackgroundCompactor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_cv_.wait(lock, [&] { return stop_ || pending_ > 0; });
    if (stop_) return;
    pending_ = 0;
    cycle_running_ = true;
    ++stats_.started;
    lock.unlock();
    fold_cycle_();
    lock.lock();
    cycle_running_ = false;
    ++stats_.completed;
    if (pending_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace hytgraph
