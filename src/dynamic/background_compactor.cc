#include "dynamic/background_compactor.h"

#include <exception>
#include <utility>

#include "util/logging.h"

namespace hytgraph {

BackgroundCompactor::BackgroundCompactor(std::function<CycleResult()> cycle)
    : cycle_(std::move(cycle)),
      worker_([this] { Loop(); }) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::RequestFold() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    ++stats_.requested;
    // A pending or in-flight cycle captures the overlay *after* this
    // request's mutations published, so it will absorb them: piggyback
    // instead of queueing a redundant drain. An in-flight cycle captured
    // *before* this request, so that one needs a follow-up drain.
    if (pending_ > 0) {
      ++stats_.coalesced;
      return;
    }
    ++pending_;
  }
  wake_cv_.notify_one();
}

void BackgroundCompactor::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [&] { return stop_ || (pending_ == 0 && !cycle_running_); });
}

void BackgroundCompactor::WaitSettled() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] {
    return stop_ || (pending_ == 0 && !cycle_running_ && !retry_armed_);
  });
}

void BackgroundCompactor::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    pending_ = 0;
    retry_armed_ = false;
    // Claim the join under the lock so concurrent Stop calls cannot both
    // join; the loser swaps an empty handle.
    worker.swap(worker_);
  }
  wake_cv_.notify_all();
  idle_cv_.notify_all();
  if (worker.joinable()) worker.join();
}

BackgroundCompactor::Stats BackgroundCompactor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

CycleResult BackgroundCompactor::RunCycleGuarded() {
  // The worker is the last line of defense: a cycle that throws must not
  // take the process (or this thread) down — park it for retry like any
  // other failure.
  try {
    return cycle_();
  } catch (const std::exception& e) {
    HYT_LOG(Warning) << "background cycle threw: " << e.what();
  } catch (...) {
    HYT_LOG(Warning) << "background cycle threw a non-std exception";
  }
  return CycleResult{true, std::chrono::microseconds{1000}};
}

void BackgroundCompactor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (retry_armed_) {
      // Parked after a failure: wake at the backoff deadline, or earlier
      // for a fresh request / shutdown.
      wake_cv_.wait_until(lock, retry_at_,
                          [&] { return stop_ || pending_ > 0; });
    } else {
      wake_cv_.wait(lock, [&] { return stop_ || pending_ > 0; });
    }
    if (stop_) return;
    const bool retry_due =
        retry_armed_ && std::chrono::steady_clock::now() >= retry_at_;
    if (pending_ == 0 && !retry_due) continue;  // spurious / early wake
    pending_ = 0;
    retry_armed_ = false;
    cycle_running_ = true;
    ++stats_.started;
    lock.unlock();
    const CycleResult result = RunCycleGuarded();
    lock.lock();
    cycle_running_ = false;
    if (result.retry && !stop_) {
      ++stats_.retries;
      retry_armed_ = true;
      retry_at_ = std::chrono::steady_clock::now() + result.backoff;
    } else {
      ++stats_.completed;
    }
    // A parked retry is idle for WaitIdle (degraded-but-serving) yet still
    // settling for WaitSettled; both predicates re-check under the lock.
    if (pending_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace hytgraph
