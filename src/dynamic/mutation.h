// Typed edge mutations against a CSR snapshot. A MutationBatch is the unit
// of graph change the Engine accepts: an ordered list of edge insertions and
// deletions, validated against the graph's vertex range before any of it is
// applied. Batches also parse from a plain-text replay file (one mutation
// per line, blank line commits a batch) so recorded mutation streams can be
// replayed through the CLI (`hytgraph_cli --mutations FILE`).

#ifndef HYTGRAPH_DYNAMIC_MUTATION_H_
#define HYTGRAPH_DYNAMIC_MUTATION_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace hytgraph {

enum class MutationOp : uint8_t {
  kInsertEdge = 0,
  kDeleteEdge = 1,
};

const char* MutationOpName(MutationOp op);

/// One concrete edge instance, as recorded in the Engine's per-epoch
/// mutation log: an insert as applied, or a removed edge with the weight it
/// actually carried (base weight for suppressed base edges, insert weight
/// for erased overlay inserts; 1 on unweighted graphs). The deletion-aware
/// incremental paths replay these records to bound invalidation.
struct EdgeRecord {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 1;

  bool operator==(const EdgeRecord&) const = default;
};

/// One edge mutation. Deletion removes *all* current src->dst edges
/// (parallel edges included); insertion appends one edge. `weight` is
/// meaningful only for insertions, and only when the target graph is
/// weighted.
struct EdgeMutation {
  MutationOp op = MutationOp::kInsertEdge;
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 1;

  bool operator==(const EdgeMutation&) const = default;
};

/// An ordered batch of edge mutations. Order matters: a deletion removes
/// the edges present at its position in the sequence, so
/// insert(u,v); delete(u,v); insert(u,v) leaves exactly one u->v edge.
class MutationBatch {
 public:
  MutationBatch() = default;

  void InsertEdge(VertexId src, VertexId dst, Weight weight = 1) {
    mutations_.push_back({MutationOp::kInsertEdge, src, dst, weight});
    ++inserts_;
  }
  void DeleteEdge(VertexId src, VertexId dst) {
    mutations_.push_back({MutationOp::kDeleteEdge, src, dst, 0});
    ++deletes_;
  }

  const std::vector<EdgeMutation>& mutations() const { return mutations_; }
  size_t size() const { return mutations_.size(); }
  bool empty() const { return mutations_.empty(); }
  uint64_t insert_count() const { return inserts_; }
  uint64_t delete_count() const { return deletes_; }
  bool has_deletes() const { return deletes_ > 0; }

  /// Every endpoint must name an existing vertex (mutations change edges,
  /// never the vertex set — growing the vertex universe is a compaction-
  /// level operation, see ROADMAP).
  Status Validate(VertexId num_vertices) const;

  /// Parses a replay stream. Line grammar:
  ///   + SRC DST [WEIGHT]   insert (weight defaults to 1)
  ///   - SRC DST            delete
  ///   # ...                comment
  /// A blank line commits the current batch; a trailing unterminated batch
  /// is committed at EOF. Empty batches are dropped.
  static Result<std::vector<MutationBatch>> ParseReplay(std::istream& in);
  static Result<std::vector<MutationBatch>> ParseReplayFile(
      const std::string& path);

 private:
  std::vector<EdgeMutation> mutations_;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
};

}  // namespace hytgraph

#endif  // HYTGRAPH_DYNAMIC_MUTATION_H_
