#include "dynamic/delta_overlay.h"

#include <string>

namespace hytgraph {

Result<DeltaOverlay::ApplyStats> DeltaOverlay::Apply(
    const MutationBatch& batch) {
  HYT_RETURN_NOT_OK(batch.Validate(num_vertices()));

  ApplyStats stats;
  BlockRef lease;  // reused across mutations hitting the same base block
  for (const EdgeMutation& m : batch.mutations()) {
    if (m.op == MutationOp::kInsertEdge) {
      deltas_[m.src].inserts.emplace_back(m.dst, m.weight);
      ++inserted_;
      ++stats.inserted;
      continue;
    }

    // Deletion: erase live overlay inserts to m.dst, then suppress any
    // not-yet-tombstoned base edges to m.dst.
    auto it = deltas_.find(m.src);
    VertexDelta* delta = it == deltas_.end() ? nullptr : &it->second;
    if (delta != nullptr && !delta->inserts.empty()) {
      const auto cut = std::remove_if(
          delta->inserts.begin(), delta->inserts.end(),
          [&](const auto& edge) { return edge.first == m.dst; });
      const auto erased =
          static_cast<uint64_t>(delta->inserts.end() - cut);
      delta->inserts.erase(cut, delta->inserts.end());
      inserted_ -= erased;
      stats.deleted += erased;
    }
    if (delta == nullptr || !delta->IsTombstoned(m.dst)) {
      uint64_t base_matches = 0;
      const std::span<const VertexId> base_nbrs =
          base_store_ != nullptr ? base_store_->Fetch(m.src, &lease).targets
                                 : base_->neighbors(m.src);
      for (VertexId nbr : base_nbrs) {
        if (nbr == m.dst) ++base_matches;
      }
      if (base_matches > 0) {
        if (delta == nullptr) delta = &deltas_[m.src];
        delta->tombstones.insert(
            std::lower_bound(delta->tombstones.begin(),
                             delta->tombstones.end(), m.dst),
            m.dst);
        delta->suppressed += base_matches;
        suppressed_ += base_matches;
        stats.deleted += base_matches;
      }
    }
    if (delta != nullptr && delta->Empty()) deltas_.erase(m.src);
  }
  return stats;
}

Result<CsrGraph> DeltaOverlay::Materialize() const {
  const VertexId n = num_vertices();
  const bool weighted = is_weighted();

  std::vector<EdgeId> row_offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    row_offsets[v + 1] = row_offsets[v] + out_degree(v);
  }

  std::vector<VertexId> column_index;
  std::vector<Weight> edge_weights;
  column_index.reserve(row_offsets[n]);
  if (weighted) edge_weights.reserve(row_offsets[n]);
  BlockRef lease;  // ascending scan: one acquire per base block
  for (VertexId v = 0; v < n; ++v) {
    ForEachNeighborLeased(v, &lease, [&](VertexId dst, Weight w) {
      column_index.push_back(dst);
      if (weighted) edge_weights.push_back(w);
    });
  }
  return CsrGraph::Create(std::move(row_offsets), std::move(column_index),
                          std::move(edge_weights));
}

}  // namespace hytgraph
