#include "dynamic/delta_overlay.h"

#include <string>

#include "util/logging.h"

namespace hytgraph {

std::shared_ptr<DeltaOverlay> DeltaOverlay::NewTail(
    std::shared_ptr<const DeltaOverlay> parent) {
  auto tail = std::make_shared<DeltaOverlay>(parent->base_,
                                             parent->base_store_);
  if (parent->empty()) return tail;  // nothing below worth chaining
  tail->depth_ = parent->depth_ + 1;
  tail->parent_ = std::move(parent);
  return tail;
}

std::shared_ptr<DeltaOverlay> DeltaOverlay::Collapsed() const {
  auto merged = std::make_shared<DeltaOverlay>(base_, base_store_);
  if (parent_ == nullptr) {
    *merged = *this;
    return merged;
  }
  // Replay the chain's logical content: all tombstoned targets as deletes
  // first, then every live insert. Order matters — a live insert may share
  // its (src, dst) with a tombstone from a different layer (deleted, then
  // re-inserted later); deleting first keeps the re-insert alive.
  MutationBatch replay;
  ForEachDeltaVertex([&](VertexId v) {
    ForEachTombstone(v, [&](VertexId dst) { replay.DeleteEdge(v, dst); });
  });
  ForEachDeltaVertex([&](VertexId v) {
    ForEachInsert(v, [&](VertexId dst, Weight w) {
      replay.InsertEdge(v, dst, w);
    });
  });
  Result<ApplyStats> applied = merged->Apply(replay);
  HYT_CHECK(applied.ok()) << "collapsing an overlay chain failed: "
                          << applied.status().ToString();
  return merged;
}

Result<DeltaOverlay::ApplyStats> DeltaOverlay::Apply(
    const MutationBatch& batch) {
  HYT_RETURN_NOT_OK(batch.Validate(num_vertices()));

  const bool weighted = is_weighted();
  ApplyStats stats;
  BlockRef lease;  // reused across mutations hitting the same base block
  for (const EdgeMutation& m : batch.mutations()) {
    if (m.op == MutationOp::kInsertEdge) {
      deltas_[m.src].inserts.emplace_back(m.dst, m.weight);
      ++inserted_;
      ++stats.inserted;
      continue;
    }

    // Deletion: erase live own-layer inserts to m.dst, then suppress any
    // not-yet-tombstoned older-layer inserts and base edges to m.dst.
    auto it = deltas_.find(m.src);
    VertexDelta* delta = it == deltas_.end() ? nullptr : &it->second;
    if (delta != nullptr && !delta->inserts.empty()) {
      auto cut = delta->inserts.begin();
      for (auto& edge : delta->inserts) {
        if (edge.first == m.dst) {
          stats.deleted_edges.push_back(
              {m.src, m.dst, weighted ? edge.second : Weight{1}});
          ++stats.deleted;
          --inserted_;
        } else {
          *cut++ = edge;
        }
      }
      delta->inserts.erase(cut, delta->inserts.end());
    }
    if (delta == nullptr || !delta->IsTombstoned(m.dst)) {
      // Walk the parent chain newest-first, counting its live inserts to
      // m.dst. A tombstone in some layer means everything below it
      // (including the base) is already suppressed, so stop there.
      uint64_t parent_matches = 0;
      bool below_tombstoned = false;
      for (const DeltaOverlay* layer = parent_.get(); layer != nullptr;
           layer = layer->parent_.get()) {
        auto pit = layer->deltas_.find(m.src);
        const VertexDelta* pd =
            pit == layer->deltas_.end() ? nullptr : &pit->second;
        if (pd == nullptr) continue;
        for (const auto& [dst, w] : pd->inserts) {
          if (dst == m.dst) {
            ++parent_matches;
            stats.deleted_edges.push_back(
                {m.src, m.dst, weighted ? w : Weight{1}});
          }
        }
        if (pd->IsTombstoned(m.dst)) {
          below_tombstoned = true;
          break;
        }
      }
      uint64_t base_matches = 0;
      if (!below_tombstoned) {
        std::span<const VertexId> base_nbrs;
        std::span<const Weight> base_wts;
        if (base_store_ != nullptr) {
          const AdjacencyRun run = base_store_->Fetch(m.src, &lease);
          base_nbrs = run.targets;
          base_wts = run.weights;
        } else {
          base_nbrs = base_->neighbors(m.src);
          base_wts = base_->weights(m.src);
        }
        for (size_t e = 0; e < base_nbrs.size(); ++e) {
          if (base_nbrs[e] != m.dst) continue;
          ++base_matches;
          stats.deleted_edges.push_back(
              {m.src, m.dst,
               base_wts.empty() ? Weight{1} : base_wts[e]});
        }
      }
      if (parent_matches + base_matches > 0) {
        if (delta == nullptr) delta = &deltas_[m.src];
        delta->tombstones.insert(
            std::lower_bound(delta->tombstones.begin(),
                             delta->tombstones.end(), m.dst),
            m.dst);
        delta->suppressed += base_matches;
        suppressed_ += base_matches;
        delta->parent_suppressed += parent_matches;
        parent_suppressed_ += parent_matches;
        stats.deleted += parent_matches + base_matches;
      }
    }
    if (delta != nullptr && delta->Empty()) deltas_.erase(m.src);
  }
  return stats;
}

Result<CsrGraph> DeltaOverlay::Materialize() const {
  const VertexId n = num_vertices();
  const bool weighted = is_weighted();

  std::vector<EdgeId> row_offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    row_offsets[v + 1] = row_offsets[v] + out_degree(v);
  }

  std::vector<VertexId> column_index;
  std::vector<Weight> edge_weights;
  column_index.reserve(row_offsets[n]);
  if (weighted) edge_weights.reserve(row_offsets[n]);
  BlockRef lease;  // ascending scan: one acquire per base block
  for (VertexId v = 0; v < n; ++v) {
    ForEachNeighborLeased(v, &lease, [&](VertexId dst, Weight w) {
      column_index.push_back(dst);
      if (weighted) edge_weights.push_back(w);
    });
  }
  return CsrGraph::Create(std::move(row_offsets), std::move(column_index),
                          std::move(edge_weights));
}

}  // namespace hytgraph
